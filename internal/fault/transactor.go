package fault

import (
	"errors"
	"fmt"

	"sdimm/internal/seccomm"
	"sdimm/internal/telemetry"
)

// LinkMetrics holds the telemetry counters a Transactor increments
// alongside its local TransactorStats, under the fault.* namespace. A nil
// *LinkMetrics is safe and records nothing.
type LinkMetrics struct {
	Exchanges   *telemetry.Counter
	Retries     *telemetry.Counter
	Retransmits *telemetry.Counter
	Resyncs     *telemetry.Counter
	Abandoned   *telemetry.Counter
}

// NewLinkMetrics resolves the fault.* link counters in reg (labels fold
// into each name, e.g. "sdimm", "3").
func NewLinkMetrics(reg *telemetry.Registry, labels ...string) *LinkMetrics {
	return &LinkMetrics{
		Exchanges:   reg.Counter("fault.exchanges", labels...),
		Retries:     reg.Counter("fault.retries", labels...),
		Retransmits: reg.Counter("fault.retransmits", labels...),
		Resyncs:     reg.Counter("fault.resyncs", labels...),
		Abandoned:   reg.Counter("fault.abandoned", labels...),
	}
}

// NotifyEvent tags one link-recovery event for Transactor.Notify.
type NotifyEvent uint8

const (
	// NotifyRetry is an extra delivery attempt (n = attempt number ≥ 1).
	NotifyRetry NotifyEvent = iota
	// NotifyRetransmit is a device-side ARQ retransmission of a cached
	// response (n = attempt number it occurred on).
	NotifyRetransmit
	// NotifyResync is a post-abandonment counter realignment (n = attempts
	// spent).
	NotifyResync
	// NotifyAbandon is an exchange that exhausted its retry budget (n =
	// attempts spent).
	NotifyAbandon
)

// TransactorStats counts recovery activity on one link.
type TransactorStats struct {
	// Exchanges that completed (including ones resolved by a retry).
	Exchanges uint64
	// Retries is the number of extra attempts spent on faulted exchanges.
	Retries uint64
	// Retransmits counts device-side ARQ retransmissions of a cached
	// response (the host re-sent a frame the device had already served).
	Retransmits uint64
	// Resyncs counts counter realignments after an abandoned exchange.
	Resyncs uint64
	// Abandoned counts exchanges that exhausted the retry budget.
	Abandoned uint64
}

// Transactor runs sealed request/response exchanges between a host session
// and a device handler across an unreliable Link, and owns all recovery:
//
//   - Bounded retry with exponential backoff on any transport fault.
//   - Replay-safe retransmission: a retry rewinds the send counter
//     (seccomm.ResendFrom) and re-seals the identical body, so the wire
//     frame is byte-identical — an observer sees a retransmission, never a
//     second, distinguishable message. Obliviousness is preserved under
//     faults by construction.
//   - Device-side ARQ: the device caches its last sealed response; when it
//     sees a frame diagnosed as a retransmission of the frame it already
//     served (seccomm.ErrReplayed), it re-emits the cached response instead
//     of re-running the handler. Handlers therefore execute at most once
//     per exchange no matter how often the link mangles traffic.
//   - Abandonment resync: when the retry budget is exhausted,
//     seccomm.Resync fast-forwards both receive counters so the next
//     exchange starts clean; abandoned counters become permanently
//     unacceptable (no pad reuse, no replay window).
//
// The exactly-once guarantee has one unavoidable distributed-systems hole:
// if the device served the request but every response was lost until
// abandonment, the host cannot know whether the handler ran. The caller
// sees the exchange fail and must treat the device's state as unknown —
// the cluster layer handles this by marking the SDIMM degraded/failed
// before any further routing decision.
type Transactor struct {
	// Host is the CPU endpoint (seals requests, opens responses).
	Host *seccomm.Session
	// Dev is the device endpoint (opens requests, seals responses).
	Dev *seccomm.Session
	// Link transports sealed frames (Perfect{} if nil).
	Link Link
	// Serve is the device application handler: it receives the opened
	// request body and returns the response body. A Serve error aborts the
	// exchange without retry (see AppError).
	Serve func(body []byte) ([]byte, error)
	// Retry bounds the recovery effort (zero value = defaults).
	Retry RetryPolicy
	// Tap, when set, observes every frame put on the link before fault
	// injection: attempt 0 is the original transmission, higher attempts
	// are retransmissions. Tests use it to prove retries are
	// byte-identical. The frame is only valid during the call; observers
	// that retain it must copy (the transactor reuses its frame buffers).
	Tap func(dir Direction, attempt int, frame []byte)
	// Metrics, when set, mirrors the recovery counters into a telemetry
	// registry (see NewLinkMetrics).
	Metrics *LinkMetrics
	// Notify, when set, observes recovery events as they happen (the
	// flight recorder hangs off this): retries, device-side ARQ
	// retransmissions, resyncs, and abandonments. Called from whatever
	// goroutine drives the exchange; implementations must be cheap and
	// must not call back into the transactor.
	Notify func(ev NotifyEvent, n int)

	lastResp []byte
	stats    TransactorStats

	// Reusable per-exchange scratch. One steady-state exchange performs no
	// heap allocations: request seal, device open, response seal, and host
	// open all land in these buffers (Deliver copies frames whenever it
	// mutates or retains them, and Serve consumers copy what they keep).
	sendBuf    []byte   // host-sealed request frame
	devRecvBuf []byte   // device-opened request body
	devSealBuf []byte   // device-sealed response frame
	recvBuf    []byte   // host-opened response body (the Exchange result)
	discardBuf []byte   // host opens of surplus duplicate frames
	outBuf     [][]byte // outbound response frame list
}

// Stats returns a snapshot of recovery counters.
func (t *Transactor) Stats() TransactorStats { return t.stats }

// Exchange runs one request/response transaction: seal body, deliver,
// serve, deliver the sealed response back, open it. On transport faults it
// retries with backoff up to the policy budget, then realigns counters and
// reports the last fault.
//
// The returned body is transactor-owned scratch, valid only until the next
// Exchange on this transactor; callers that retain it must copy.
func (t *Transactor) Exchange(body []byte) ([]byte, error) {
	p := t.Retry.withDefaults()
	base := t.Host.SendCounter()
	var lastErr error
	used := 0
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		used = attempt + 1
		if attempt > 0 {
			t.stats.Retries++
			if t.Metrics != nil {
				t.Metrics.Retries.Inc()
			}
			if t.Notify != nil {
				t.Notify(NotifyRetry, attempt)
			}
			p.Sleep(p.backoff(attempt))
			// Rewind so the retry re-seals the identical frame.
			if err := t.Host.ResendFrom(base); err != nil {
				return nil, err
			}
		}
		resp, err := t.attempt(body, attempt)
		if err == nil {
			t.stats.Exchanges++
			if t.Metrics != nil {
				t.Metrics.Exchanges.Inc()
			}
			return resp, nil
		}
		var app *AppError
		if errors.As(err, &app) {
			// The handler ran and failed; the link did its job.
			t.stats.Exchanges++
			if t.Metrics != nil {
				t.Metrics.Exchanges.Inc()
			}
			return nil, err
		}
		lastErr = err
		if errors.Is(err, ErrFailStop) {
			break
		}
	}
	// Abandon the exchange: realign both directions so the link is usable
	// for the next one, and drop the cached response (its counter is now
	// unacceptable to the host anyway).
	seccomm.Resync(t.Host, t.Dev)
	t.lastResp = nil
	t.stats.Resyncs++
	t.stats.Abandoned++
	if t.Metrics != nil {
		t.Metrics.Resyncs.Inc()
		t.Metrics.Abandoned.Inc()
	}
	if t.Notify != nil {
		t.Notify(NotifyResync, used)
		t.Notify(NotifyAbandon, used)
	}
	return nil, fmt.Errorf("fault: exchange abandoned after %d attempts: %w", used, lastErr)
}

func (t *Transactor) link() Link {
	if t.Link == nil {
		return Perfect{}
	}
	return t.Link
}

func (t *Transactor) tap(dir Direction, attempt int, frame []byte) {
	if t.Tap != nil {
		t.Tap(dir, attempt, frame)
	}
}

// attempt performs one delivery round trip.
func (t *Transactor) attempt(body []byte, attempt int) ([]byte, error) {
	frame := t.Host.SealAppend(t.sendBuf[:0], body)
	t.sendBuf = frame
	t.tap(HostToDev, attempt, frame)
	observed, err := t.link().Deliver(HostToDev, frame)
	if err != nil {
		return nil, err
	}

	// Device side: open every observed frame. Authentic fresh frames are
	// served exactly once; retransmissions of the previously served frame
	// re-emit the cached response; everything else is dropped on the
	// floor (corruption, stale replays).
	outbound := t.outBuf[:0]
	for _, f := range observed {
		opened, err := t.Dev.OpenAppend(t.devRecvBuf[:0], f)
		if err != nil {
			if errors.Is(err, seccomm.ErrReplayed) && t.lastResp != nil {
				t.stats.Retransmits++
				if t.Metrics != nil {
					t.Metrics.Retransmits.Inc()
				}
				if t.Notify != nil {
					t.Notify(NotifyRetransmit, attempt)
				}
				outbound = append(outbound, t.lastResp)
			}
			continue
		}
		t.devRecvBuf = opened
		respBody, err := t.Serve(opened)
		if err != nil {
			t.outBuf = clearFrames(outbound)
			return nil, &AppError{Err: err}
		}
		sealed := t.Dev.SealAppend(t.devSealBuf[:0], respBody)
		t.devSealBuf = sealed
		// Cache the exact wire bytes for ARQ. When a retransmission was
		// already queued this attempt it aliases the old cache, so the new
		// cache must be a fresh buffer rather than an in-place overwrite.
		if len(outbound) > 0 {
			t.lastResp = append([]byte(nil), sealed...)
		} else {
			t.lastResp = append(t.lastResp[:0], sealed...)
		}
		outbound = append(outbound, sealed)
	}

	// Response leg: deliver each outbound frame; the host accepts the
	// first one that authenticates and ignores duplicates.
	var got []byte
	ok := false
	for _, rf := range outbound {
		t.tap(DevToHost, attempt, rf)
		frames, err := t.link().Deliver(DevToHost, rf)
		if err != nil {
			if ok {
				// The host already authenticated a response; losing a
				// surplus frame (ARQ duplicate) cannot fail the exchange.
				// Treating it as a failure would wedge the exchange for
				// good: the host's receive counter has moved on, so no
				// retry could ever be answered.
				break
			}
			t.outBuf = clearFrames(outbound)
			return nil, err
		}
		for _, f := range frames {
			if ok {
				// Surplus frames still go through Open so replay/duplicate
				// accounting matches the non-pooled behaviour exactly.
				if d, derr := t.Host.OpenAppend(t.discardBuf[:0], f); derr == nil {
					t.discardBuf = d
				}
				continue
			}
			opened, err := t.Host.OpenAppend(t.recvBuf[:0], f)
			if err != nil {
				continue
			}
			t.recvBuf = opened
			got = opened
			ok = true
		}
	}
	t.outBuf = clearFrames(outbound)
	if !ok {
		return nil, ErrNoResponse
	}
	return got, nil
}

// clearFrames empties a frame list for reuse without retaining its entries.
func clearFrames(fs [][]byte) [][]byte {
	clear(fs)
	return fs[:0]
}
