package cpusim

import (
	"testing"

	"sdimm/internal/event"
	"sdimm/internal/trace"
)

// fakeMem completes reads after a fixed latency and counts traffic.
type fakeMem struct {
	eng     *event.Engine
	latency event.Time
	reads   int
	writes  int
	// maxConcurrent tracks the peak number of outstanding reads (observed MLP).
	outstanding   int
	maxConcurrent int
}

func (m *fakeMem) Read(addr uint64, done func()) {
	m.reads++
	m.outstanding++
	if m.outstanding > m.maxConcurrent {
		m.maxConcurrent = m.outstanding
	}
	m.eng.After(m.latency, func() {
		m.outstanding--
		done()
	})
}

func (m *fakeMem) Write(addr uint64) { m.writes++ }

func defaultCfg() Config {
	return Config{LLCLines: 1024, LLCWays: 8, LLCLatency: 10, ROB: 128}
}

func run(t *testing.T, tr []trace.Record, memLat event.Time, cfg Config) (Stats, *fakeMem) {
	t.Helper()
	eng := &event.Engine{}
	mem := &fakeMem{eng: eng, latency: memLat}
	core, err := New(eng, mem, cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	finished := false
	core.Start(func() { finished = true })
	eng.RunUntil(1 << 40)
	if !finished {
		t.Fatal("core never finished")
	}
	return core.Stats(), mem
}

func TestValidation(t *testing.T) {
	eng := &event.Engine{}
	mem := &fakeMem{eng: eng}
	tr := []trace.Record{{Addr: 1}}
	if _, err := New(nil, mem, defaultCfg(), tr); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(eng, nil, defaultCfg(), tr); err == nil {
		t.Error("nil memory accepted")
	}
	if _, err := New(eng, mem, defaultCfg(), nil); err == nil {
		t.Error("empty trace accepted")
	}
	bad := defaultCfg()
	bad.ROB = 0
	if _, err := New(eng, mem, bad, tr); err == nil {
		t.Error("zero ROB accepted")
	}
	bad = defaultCfg()
	bad.LLCLines = 7
	if _, err := New(eng, mem, bad, tr); err == nil {
		t.Error("bad LLC accepted")
	}
}

func TestSingleAccessTiming(t *testing.T) {
	tr := []trace.Record{{Gap: 100, Addr: 5}}
	st, mem := run(t, tr, 200, defaultCfg())
	if mem.reads != 1 {
		t.Fatalf("reads = %d", mem.reads)
	}
	// 100 gap instructions + 1 memory inst + 200 cycles memory.
	if st.Cycles < 300 || st.Cycles > 310 {
		t.Fatalf("cycles = %d, want ≈ 301", st.Cycles)
	}
	if st.LLCMisses != 1 || st.Records != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLLCHitsFilterMemory(t *testing.T) {
	var tr []trace.Record
	for i := 0; i < 100; i++ {
		tr = append(tr, trace.Record{Gap: 1, Addr: uint64(i % 4)})
	}
	st, mem := run(t, tr, 100, defaultCfg())
	if mem.reads != 4 {
		t.Fatalf("memory reads = %d, want 4 cold misses", mem.reads)
	}
	if st.LLCHits != 96 {
		t.Fatalf("hits = %d", st.LLCHits)
	}
}

func TestDirtyWritebacks(t *testing.T) {
	cfg := defaultCfg()
	cfg.LLCLines = 16
	cfg.LLCWays = 2
	var tr []trace.Record
	// Write a footprint far larger than the LLC: dirty evictions must
	// reach memory.
	for i := 0; i < 400; i++ {
		tr = append(tr, trace.Record{Gap: 1, Addr: uint64(i), Write: true})
	}
	st, mem := run(t, tr, 50, cfg)
	if mem.writes == 0 || st.Writebacks == 0 {
		t.Fatal("no writebacks")
	}
}

func TestMLPFromBurstyTrace(t *testing.T) {
	// Back-to-back misses to distinct lines fit in the ROB together and
	// must overlap in memory.
	var bursty, serial []trace.Record
	for i := 0; i < 64; i++ {
		bursty = append(bursty, trace.Record{Gap: 0, Addr: uint64(i * 999)})
		serial = append(serial, trace.Record{Gap: 200, Addr: uint64(i * 999)})
	}
	_, memB := run(t, bursty, 300, defaultCfg())
	_, memS := run(t, serial, 300, defaultCfg())
	if memB.maxConcurrent < 8 {
		t.Fatalf("bursty trace reached MLP %d, want ≥ 8", memB.maxConcurrent)
	}
	if memS.maxConcurrent > 2 {
		t.Fatalf("serial trace reached MLP %d, want ≤ 2", memS.maxConcurrent)
	}
}

func TestROBBoundsMLP(t *testing.T) {
	cfg := defaultCfg()
	cfg.ROB = 4
	var tr []trace.Record
	for i := 0; i < 64; i++ {
		tr = append(tr, trace.Record{Gap: 0, Addr: uint64(i * 999)})
	}
	_, mem := run(t, tr, 300, cfg)
	if mem.maxConcurrent > 4 {
		t.Fatalf("MLP %d exceeded ROB 4", mem.maxConcurrent)
	}
}

func TestBurstyFasterThanSerial(t *testing.T) {
	var bursty, serial []trace.Record
	for i := 0; i < 64; i++ {
		bursty = append(bursty, trace.Record{Gap: 0, Addr: uint64(i * 999)})
		serial = append(serial, trace.Record{Gap: 0, Addr: uint64(i * 999)})
	}
	// Same instruction stream, but serial memory has dependent latency —
	// emulate with ROB 1 so no overlap is possible.
	stB, _ := run(t, bursty, 300, defaultCfg())
	cfg := defaultCfg()
	cfg.ROB = 1
	stS, _ := run(t, serial, 300, cfg)
	if stB.Cycles >= stS.Cycles {
		t.Fatalf("overlapped %d cycles, serialized %d: no MLP win", stB.Cycles, stS.Cycles)
	}
}

func TestMarkCycleRecorded(t *testing.T) {
	cfg := defaultCfg()
	cfg.MarkAt = 10
	var tr []trace.Record
	for i := 0; i < 20; i++ {
		tr = append(tr, trace.Record{Gap: 5, Addr: uint64(i * 999)})
	}
	st, _ := run(t, tr, 100, cfg)
	if st.MarkCycle == 0 || st.MarkCycle >= st.Cycles {
		t.Fatalf("mark cycle %d of %d", st.MarkCycle, st.Cycles)
	}
	if st.MarkMisses == 0 {
		t.Fatal("mark misses not recorded")
	}
}

func TestAvgMissLatency(t *testing.T) {
	tr := []trace.Record{{Gap: 0, Addr: 1}, {Gap: 50, Addr: 99999}}
	st, _ := run(t, tr, 123, defaultCfg())
	if st.AvgMissLatency() < 123 || st.AvgMissLatency() > 130 {
		t.Fatalf("avg miss latency = %v, want ≈ 123", st.AvgMissLatency())
	}
	var empty Stats
	if empty.AvgMissLatency() != 0 {
		t.Fatal("empty latency nonzero")
	}
}

func TestInstructionAccounting(t *testing.T) {
	tr := []trace.Record{{Gap: 10, Addr: 1}, {Gap: 20, Addr: 2}}
	st, _ := run(t, tr, 50, defaultCfg())
	if st.Instructions != 10+1+20+1 {
		t.Fatalf("instructions = %d, want 32", st.Instructions)
	}
}
