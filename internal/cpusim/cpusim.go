// Package cpusim models the processor frontend of the evaluation: a 1.6 GHz
// in-order core with a 128-entry ROB window replaying an L1-miss trace
// through a shared 2 MB / 8-way / 10-cycle LLC (Table II). LLC misses go to
// a Memory backend (non-secure DRAM or one of the ORAM protocols); dirty
// victims become posted memory writes. Memory-level parallelism arises
// naturally: misses whose trace positions fit inside the ROB window overlap.
package cpusim

import (
	"errors"
	"fmt"

	"sdimm/internal/cache"
	"sdimm/internal/event"
	"sdimm/internal/trace"
)

// Memory is the interface to whatever sits below the LLC.
type Memory interface {
	// Read requests a line; done fires when data returns.
	Read(addr uint64, done func())
	// Write posts a line writeback (completion is not tracked).
	Write(addr uint64)
}

// Stats reports core/LLC behaviour.
type Stats struct {
	Records       uint64 // trace records consumed
	Instructions  uint64 // instructions executed (gaps + memory ops)
	Cycles        uint64 // total cycles
	LLCHits       uint64
	LLCMisses     uint64
	Writebacks    uint64
	MemLatencySum uint64 // summed LLC-miss latencies, cycles
	MarkCycle     uint64 // cycle when the warmup record count was reached
	MarkMisses    uint64 // LLC misses at the mark
}

// AvgMissLatency returns mean LLC-miss service latency.
func (s Stats) AvgMissLatency() float64 {
	if s.LLCMisses == 0 {
		return 0
	}
	return float64(s.MemLatencySum) / float64(s.LLCMisses)
}

// Config sizes the core.
type Config struct {
	LLCLines   int // total LLC lines
	LLCWays    int
	LLCLatency int // cycles
	ROB        int // in-flight instruction window
	// MarkAt records Stats.MarkCycle when this many trace records have
	// completed (the warmup/measure boundary). Zero disables.
	MarkAt int
}

// Core replays one trace against a memory backend.
type Core struct {
	eng *event.Engine
	mem Memory
	llc *cache.Cache
	cfg Config

	trace     []trace.Record
	nextRec   int
	fetched   uint64         // instructions fetched so far
	recPos    uint64         // instruction position of the next record
	inflight  map[int]uint64 // record index -> issue cycle (pending memory ops)
	oldest    []int          // pending record indices in order (for retirePos)
	posCache  map[int]uint64 // record index -> instruction position (pending)
	ticking   bool
	done      bool
	doneCycle uint64
	onDone    func()

	stats Stats
}

// New builds a core. The trace must be non-empty.
func New(eng *event.Engine, mem Memory, cfg Config, tr []trace.Record) (*Core, error) {
	if eng == nil || mem == nil {
		return nil, errors.New("cpusim: nil engine or memory")
	}
	if len(tr) == 0 {
		return nil, errors.New("cpusim: empty trace")
	}
	if cfg.ROB <= 0 || cfg.LLCLatency < 0 {
		return nil, fmt.Errorf("cpusim: invalid config %+v", cfg)
	}
	llc, err := cache.New(cfg.LLCLines, cfg.LLCWays)
	if err != nil {
		return nil, fmt.Errorf("cpusim: llc: %w", err)
	}
	c := &Core{
		eng:      eng,
		mem:      mem,
		llc:      llc,
		cfg:      cfg,
		trace:    tr,
		inflight: make(map[int]uint64),
		posCache: make(map[int]uint64),
	}
	c.recPos = uint64(tr[0].Gap)
	return c, nil
}

// Start begins execution; onDone fires when the whole trace has completed
// (all memory operations included).
func (c *Core) Start(onDone func()) {
	c.onDone = onDone
	c.eng.Schedule(c.eng.Now(), c.tick)
}

// Stats returns a snapshot. Cycles is the completion cycle once the trace
// has finished, else the current simulation time.
func (c *Core) Stats() Stats {
	s := c.stats
	if c.done {
		s.Cycles = c.doneCycle
	} else {
		s.Cycles = uint64(c.eng.Now())
	}
	return s
}

// Done reports whether the trace has fully completed.
func (c *Core) Done() bool { return c.done }

// retireLimit returns the highest instruction index the core may fetch:
// the oldest incomplete memory op plus the ROB window (in-order retirement
// cannot pass a pending load).
func (c *Core) retireLimit() uint64 {
	if len(c.oldest) == 0 {
		return c.fetched + uint64(c.cfg.ROB)
	}
	oldestIdx := c.oldest[0]
	// Instruction position of the oldest pending record.
	return c.posOf(oldestIdx) + uint64(c.cfg.ROB)
}

// posOf returns the instruction position of a pending record.
func (c *Core) posOf(i int) uint64 { return c.posCache[i] }

func (c *Core) tick() {
	c.ticking = false
	if c.done {
		return
	}
	now := uint64(c.eng.Now())

	for {
		if c.nextRec >= len(c.trace) {
			// Trace exhausted: done when all memory ops complete.
			if len(c.oldest) == 0 && !c.done {
				c.done = true
				c.doneCycle = uint64(c.eng.Now())
				if c.onDone != nil {
					c.onDone()
				}
			}
			return
		}
		limit := c.retireLimit()
		if c.fetched < c.recPos {
			// Execute the gap instructions at 1 IPC, bounded by the window
			// (the window slides as instructions retire, so with nothing
			// pending the next tick continues from a larger limit).
			target := c.recPos
			if target > limit {
				target = limit
			}
			if target > c.fetched {
				delay := target - c.fetched
				c.stats.Instructions += delay
				c.fetched = target
				c.scheduleTick(now + delay)
				return
			}
		}
		if c.recPos >= limit {
			// Window full against a pending memory op: wait for completion.
			return
		}
		// Issue the memory access for record nextRec.
		c.issue(c.nextRec, now)
		c.fetched++ // the memory instruction itself
		c.stats.Instructions++
		idx := c.nextRec
		c.nextRec++
		if c.nextRec < len(c.trace) {
			c.recPos = c.posOf(idx) + 1 + uint64(c.trace[c.nextRec].Gap)
		}
	}
}

func (c *Core) issue(i int, now uint64) {
	c.posCache[i] = c.recPos
	rec := c.trace[i]
	res := c.llc.Access(rec.Addr, rec.Write)
	if res.Evicted && res.VictimDirty {
		c.stats.Writebacks++
		c.mem.Write(res.Victim)
	}
	if res.Hit {
		c.stats.LLCHits++
		// Hits complete after the LLC latency.
		c.pend(i)
		c.eng.After(event.Time(c.cfg.LLCLatency), func() { c.complete(i) })
		return
	}
	c.stats.LLCMisses++
	c.pend(i)
	issueAt := now
	c.mem.Read(rec.Addr, func() {
		c.stats.MemLatencySum += uint64(c.eng.Now()) - issueAt
		c.complete(i)
	})
}

func (c *Core) pend(i int) {
	c.inflight[i] = uint64(c.eng.Now())
	c.oldest = append(c.oldest, i)
}

func (c *Core) complete(i int) {
	delete(c.inflight, i)
	for len(c.oldest) > 0 {
		if _, still := c.inflight[c.oldest[0]]; still {
			break
		}
		delete(c.posCache, c.oldest[0])
		c.oldest = c.oldest[1:]
	}
	c.stats.Records++
	if c.cfg.MarkAt > 0 && c.stats.Records == uint64(c.cfg.MarkAt) {
		c.stats.MarkCycle = uint64(c.eng.Now())
		c.stats.MarkMisses = c.stats.LLCMisses
	}
	c.scheduleTick(uint64(c.eng.Now()))
}

func (c *Core) scheduleTick(at uint64) {
	if c.ticking {
		return
	}
	c.ticking = true
	c.eng.Schedule(event.Time(at), c.tick)
}
