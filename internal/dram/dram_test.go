package dram

import (
	"testing"

	"sdimm/internal/config"
	"sdimm/internal/event"
)

func testChannel(t *testing.T) (*event.Engine, *Channel, config.Org, config.Timing) {
	t.Helper()
	eng := &event.Engine{}
	org := config.DefaultOrg(1)
	tm := config.DDR31600()
	ch := NewChannel(eng, "ch0", org, tm, org.RanksPerChannel())
	return eng, ch, org, tm
}

// cpu converts memory cycles to CPU cycles for the default 2:1 ratio.
func cpu(memCycles int) event.Time { return event.Time(memCycles * 2) }

func TestSingleReadLatency(t *testing.T) {
	eng, ch, _, tm := testChannel(t)
	var done event.Time
	ch.Submit(&Request{
		Coord:      Coord{Rank: 0, Bank: 0, Row: 5, Col: 3},
		OnComplete: func(now event.Time) { done = now },
	})
	eng.RunUntil(50_000_000)
	// Closed bank: ACT at 0, RD at tRCD, data at tRCD+CL+tBURST.
	want := cpu(tm.TRCD + tm.CL + tm.TBURST)
	if done != want {
		t.Fatalf("read completed at %d, want %d", done, want)
	}
	s := ch.Stats()
	if s.Reads != 1 || s.Activates != 1 || s.RowHits != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	eng, ch, _, _ := testChannel(t)
	var t1, t2, t3 event.Time
	c := Coord{Rank: 0, Bank: 0, Row: 5, Col: 0}
	ch.Submit(&Request{Coord: c, OnComplete: func(n event.Time) { t1 = n }})
	c.Col = 1
	ch.Submit(&Request{Coord: c, OnComplete: func(n event.Time) { t2 = n }})
	c.Row = 9 // conflict
	ch.Submit(&Request{Coord: c, OnComplete: func(n event.Time) { t3 = n }})
	eng.RunUntil(50_000_000)
	hitCost := t2 - t1
	missCost := t3 - t2
	if hitCost >= missCost {
		t.Fatalf("row hit cost %d not less than conflict cost %d", hitCost, missCost)
	}
	if s := ch.Stats(); s.RowHits != 1 {
		t.Fatalf("RowHits = %d, want 1", s.RowHits)
	}
}

func TestBankParallelismBeatsSerial(t *testing.T) {
	// Two requests to different banks should finish sooner than two to the
	// same bank+row-conflict.
	run := func(c2 Coord) event.Time {
		eng, ch, _, _ := testChannel(t)
		var last event.Time
		ch.Submit(&Request{Coord: Coord{Row: 1}, OnComplete: func(n event.Time) { last = n }})
		ch.Submit(&Request{Coord: c2, OnComplete: func(n event.Time) { last = n }})
		eng.RunUntil(50_000_000)
		return last
	}
	parallel := run(Coord{Bank: 1, Row: 2})
	serial := run(Coord{Bank: 0, Row: 2})
	if parallel >= serial {
		t.Fatalf("different-bank completion %d not before same-bank conflict %d", parallel, serial)
	}
}

func TestWritesDrainAtWatermark(t *testing.T) {
	eng, ch, org, _ := testChannel(t)
	// Fill the write queue past the high watermark with one read pending;
	// the drain must let writes through even though reads have priority.
	reads := 0
	for i := 0; i < org.WriteDrainHigh+5; i++ {
		ch.Submit(&Request{Coord: Coord{Bank: i % 8, Row: uint32(i), Col: 0}, Write: true})
	}
	ch.Submit(&Request{Coord: Coord{Bank: 0, Row: 100}, OnComplete: func(event.Time) { reads++ }})
	eng.RunUntil(1_000_000)
	s := ch.Stats()
	if s.Writes == 0 {
		t.Fatal("no writes drained")
	}
	if reads != 1 {
		t.Fatal("read never completed")
	}
	if ch.Pending() != 0 {
		t.Fatalf("%d requests stuck", ch.Pending())
	}
}

func TestReadPriorityUnderLightWrites(t *testing.T) {
	eng, ch, _, _ := testChannel(t)
	var readDone, writeDone event.Time
	// One write then one read to different banks: with light write traffic
	// the read should be served first (write queue below watermark).
	ch.Submit(&Request{Coord: Coord{Bank: 0, Row: 1}, Write: true, OnComplete: func(n event.Time) { writeDone = n }})
	ch.Submit(&Request{Coord: Coord{Bank: 1, Row: 1}, OnComplete: func(n event.Time) { readDone = n }})
	eng.RunUntil(50_000_000)
	if readDone >= writeDone {
		t.Fatalf("read done at %d, write at %d: read not prioritized", readDone, writeDone)
	}
}

func TestAllRequestsComplete(t *testing.T) {
	eng, ch, org, _ := testChannel(t)
	const n = 500
	completed := 0
	for i := 0; i < n; i++ {
		ch.Submit(&Request{
			Coord: Coord{
				Rank: i % org.RanksPerChannel(),
				Bank: (i / 3) % org.BanksPerRank,
				Row:  uint32(i * 7 % org.RowsPerBank),
				Col:  i % org.LinesPerRow(),
			},
			Write:      i%3 == 0,
			OnComplete: func(event.Time) { completed++ },
		})
	}
	eng.RunUntil(100_000_000)
	if completed != n {
		t.Fatalf("completed %d/%d", completed, n)
	}
	s := ch.Stats()
	if s.Reads+s.Writes != n {
		t.Fatalf("reads+writes = %d, want %d", s.Reads+s.Writes, n)
	}
}

func TestCompletionOrderWithinBankIsFIFOPerRow(t *testing.T) {
	eng, ch, _, _ := testChannel(t)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		ch.Submit(&Request{Coord: Coord{Row: 1, Col: i}, OnComplete: func(event.Time) { order = append(order, i) }})
	}
	eng.RunUntil(50_000_000)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-row completion order %v", order)
		}
	}
}

func TestRefreshHappens(t *testing.T) {
	eng, ch, _, tm := testChannel(t)
	eng.RunUntil(event.Time(3 * tm.TREFI * 2))
	s := ch.Stats()
	if s.Refreshes == 0 {
		t.Fatal("no refreshes fired")
	}
}

func TestRefreshDelaysAccess(t *testing.T) {
	eng, ch, _, tm := testChannel(t)
	// Let the first refresh start, then submit immediately after it begins.
	eng.RunUntil(event.Time(tm.TREFI*2 + 2))
	var done event.Time
	ch.Submit(&Request{Coord: Coord{Row: 3}, OnComplete: func(n event.Time) { done = n }})
	eng.RunUntil(50_000_000)
	plain := cpu(tm.TRCD + tm.CL + tm.TBURST)
	if done < event.Time(tm.TREFI*2)+plain {
		t.Fatalf("access during refresh finished at %d, too early", done)
	}
	// It must be delayed by roughly tRFC.
	if done > event.Time((tm.TREFI+tm.TRFC)*2)+plain+100 {
		t.Fatalf("access delayed too long: %d", done)
	}
}

func TestPowerDownAndWake(t *testing.T) {
	eng, ch, _, tm := testChannel(t)
	// Warm access, then power the rank down and access again: the second
	// access pays the tXP wake penalty.
	var t1 event.Time
	ch.Submit(&Request{Coord: Coord{Row: 1}, OnComplete: func(n event.Time) { t1 = n }})
	eng.RunUntil(50_000_000)
	ch.PowerDown(0)
	eng.RunUntil(50_001_000) // idle while powered down
	start := eng.Now()
	var t2 event.Time
	ch.Submit(&Request{Coord: Coord{Row: 1, Col: 5}, OnComplete: func(n event.Time) { t2 = n }})
	eng.RunUntil(50_000_000)
	_ = t1
	lat := t2 - start
	if lat < cpu(tm.TXP) {
		t.Fatalf("post-powerdown access latency %d < tXP %d", lat, cpu(tm.TXP))
	}
	s := ch.Stats()
	if s.PerRank[0].Wakeups != 1 {
		t.Fatalf("Wakeups = %d, want 1", s.PerRank[0].Wakeups)
	}
	if s.PerRank[0].TPowerDown == 0 {
		t.Fatal("no power-down residency recorded")
	}
}

func TestPowerDownRefusedWithPendingWork(t *testing.T) {
	eng, ch, _, _ := testChannel(t)
	ch.Submit(&Request{Coord: Coord{Row: 1}})
	ch.PowerDown(0) // must be refused: queued work
	eng.RunUntil(50_000_000)
	s := ch.Stats()
	if s.PerRank[0].Wakeups != 0 {
		t.Fatal("rank powered down despite queued work")
	}
	if s.Reads != 1 {
		t.Fatalf("read lost: %+v", s)
	}
}

func TestResidencyAccounting(t *testing.T) {
	eng, ch, _, _ := testChannel(t)
	done := false
	ch.Submit(&Request{Coord: Coord{Row: 1}, OnComplete: func(event.Time) { done = true }})
	eng.RunUntil(10_000)
	if !done {
		t.Fatal("request did not complete")
	}
	s := ch.Stats()
	r0 := s.PerRank[0]
	total := r0.TActive + r0.TPrecharge + r0.TPowerDown
	if total == 0 || total > uint64(eng.Now()) {
		t.Fatalf("residency sum %d vs now %d", total, eng.Now())
	}
	if r0.TActive == 0 {
		t.Fatal("no active residency despite an access")
	}
}

func TestSubmitPanicsOnBadCoord(t *testing.T) {
	_, ch, _, _ := testChannel(t)
	for _, c := range []Coord{{Rank: 99}, {Bank: 99}, {Col: 9999}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Submit(%+v) did not panic", c)
				}
			}()
			ch.Submit(&Request{Coord: c})
		}()
	}
}

func TestDataBusSerializesReads(t *testing.T) {
	eng, ch, _, tm := testChannel(t)
	// Many row hits in one bank: steady state is one burst per tCCD.
	var times []event.Time
	for i := 0; i < 10; i++ {
		ch.Submit(&Request{Coord: Coord{Row: 1, Col: i}, OnComplete: func(n event.Time) { times = append(times, n) }})
	}
	eng.RunUntil(50_000_000)
	for i := 1; i < len(times); i++ {
		gap := times[i] - times[i-1]
		if gap < cpu(tm.TBURST) {
			t.Fatalf("burst gap %d < tBURST %d", gap, cpu(tm.TBURST))
		}
	}
}

func TestMapperRoundTripDistinct(t *testing.T) {
	org := config.DefaultOrg(1)
	m := NewMapper(org, org.RanksPerChannel())
	seen := make(map[Coord]uint64)
	for line := uint64(0); line < 100_000; line += 97 {
		c := m.Map(line)
		if prev, dup := seen[c]; dup {
			t.Fatalf("lines %d and %d map to same coord %+v", prev, line, c)
		}
		seen[c] = line
	}
}

func TestMapperSequentialLinesShareRow(t *testing.T) {
	org := config.DefaultOrg(1)
	m := NewMapper(org, org.RanksPerChannel())
	c0 := m.Map(0)
	c1 := m.Map(1)
	if c0.Row != c1.Row || c0.Bank != c1.Bank || c0.Rank != c1.Rank {
		t.Fatalf("sequential lines not row-buffer friendly: %+v vs %+v", c0, c1)
	}
	cEnd := m.Map(uint64(org.LinesPerRow()))
	if cEnd.Bank == c0.Bank && cEnd.Rank == c0.Rank && cEnd.Row == c0.Row {
		t.Fatal("row boundary did not advance mapping")
	}
}

func TestMapperWrapsModuloCapacity(t *testing.T) {
	org := config.DefaultOrg(1)
	m := NewMapper(org, org.RanksPerChannel())
	if m.Map(0) != m.Map(m.Lines()) {
		t.Fatal("mapping did not wrap at capacity")
	}
}

func TestMapToRankPins(t *testing.T) {
	org := config.DefaultOrg(1)
	m := NewMapper(org, org.RanksPerChannel())
	for line := uint64(0); line < 10_000; line += 13 {
		c := m.MapToRank(line, 3)
		if c.Rank != 3 {
			t.Fatalf("MapToRank rank = %d", c.Rank)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MapToRank with bad rank did not panic")
		}
	}()
	m.MapToRank(0, 99)
}

func TestLinkOccupancyAndOrdering(t *testing.T) {
	eng := &event.Engine{}
	org := config.DefaultOrg(1)
	tm := config.DDR31600()
	l := NewLink(eng, org, tm)
	var done []event.Time
	for i := 0; i < 4; i++ {
		l.Transfer(64, func(n event.Time) { done = append(done, n) })
	}
	eng.RunUntil(50_000_000)
	if len(done) != 4 {
		t.Fatalf("%d transfers completed", len(done))
	}
	burst := event.Time(tm.TBURST * 2)
	for i := 1; i < 4; i++ {
		if done[i]-done[i-1] != burst {
			t.Fatalf("transfer spacing %d, want %d", done[i]-done[i-1], burst)
		}
	}
	s := l.Stats()
	if s.Transfers != 4 || s.Bytes != 256 {
		t.Fatalf("link stats %+v", s)
	}
}

func TestLinkShortCommandCheaperThanLine(t *testing.T) {
	eng := &event.Engine{}
	org := config.DefaultOrg(1)
	tm := config.DDR31600()
	l := NewLink(eng, org, tm)
	l.Transfer(8, nil)  // PROBE-sized
	l.Transfer(64, nil) // full line
	eng.RunUntil(50_000_000)
	s := l.Stats()
	full := uint64(tm.TBURST * 2)
	if s.BusyTime >= 2*full {
		t.Fatalf("short command billed as full burst: busy=%d", s.BusyTime)
	}
}

func TestLinkZeroByteCommand(t *testing.T) {
	eng := &event.Engine{}
	l := NewLink(eng, config.DefaultOrg(1), config.DDR31600())
	fired := false
	l.Transfer(0, func(event.Time) { fired = true })
	eng.RunUntil(50_000_000)
	if !fired {
		t.Fatal("zero-byte command never completed")
	}
}
