package dram

import (
	"sdimm/internal/config"
	"sdimm/internal/event"
)

// Link models the host DDR channel when it carries CPU<->secure-buffer
// transfers rather than bank accesses (the SDIMM protocols). A transfer
// occupies the shared data bus for its burst duration and completes after a
// fixed command/response latency, so contention between SDIMMs on the same
// channel is modelled while bank timing (which the buffer hides) is not.
//
// Transfers are granular at half bursts (DDR3 burst-chop 4, 32 bytes on a
// 64-bit channel) so short commands such as PROBE do not pay for a full
// line.
type Link struct {
	eng *event.Engine

	tBurst  int64 // full-burst (one line) bus occupancy, CPU cycles
	tCmd    int64 // command-bus slot, CPU cycles
	latency int64 // command decode + CAS-style response latency

	busFree int64

	stats LinkStats
}

// LinkStats counts link traffic.
type LinkStats struct {
	Transfers uint64
	Bytes     uint64
	BusyTime  uint64 // cycles of data-bus occupancy
}

// NewLink builds a link over the given organization/timing: burst time and
// response latency follow the DDR3 parameters.
func NewLink(eng *event.Engine, org config.Org, tm config.Timing) *Link {
	r := int64(org.CPUCyclesPerMemCycle)
	return &Link{
		eng:     eng,
		tBurst:  int64(tm.TBURST) * r,
		tCmd:    r,
		latency: int64(tm.CL) * r,
	}
}

// Stats returns a snapshot of link statistics.
func (l *Link) Stats() LinkStats { return l.stats }

// BusyUntil returns the time the data bus frees.
func (l *Link) BusyUntil() event.Time {
	n := int64(l.eng.Now())
	if l.busFree < n {
		return event.Time(n)
	}
	return event.Time(l.busFree)
}

// Transfer moves bytes across the link and calls onDone (if non-nil) when
// the last beat lands. Zero-byte transfers model pure commands: they occupy
// one command slot and still pay the response latency.
func (l *Link) Transfer(bytes int, onDone func(now event.Time)) {
	now := int64(l.eng.Now())
	start := now
	if l.busFree > start {
		start = l.busFree
	}
	occupancy := l.occupancy(bytes)
	l.busFree = start + occupancy
	end := start + occupancy + l.latency
	l.stats.Transfers++
	l.stats.Bytes += uint64(bytes)
	l.stats.BusyTime += uint64(occupancy)
	if onDone != nil {
		cb := onDone
		l.eng.Schedule(event.Time(end), func() { cb(event.Time(end)) })
	}
}

func (l *Link) occupancy(bytes int) int64 {
	if bytes <= 0 {
		return l.tCmd
	}
	half := l.tBurst / 2
	if half == 0 {
		half = 1
	}
	// Round up to half-burst (32 B) granularity.
	halves := int64((bytes + 31) / 32)
	return halves * half
}
