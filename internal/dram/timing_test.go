package dram

import (
	"testing"

	"sdimm/internal/config"
	"sdimm/internal/event"
)

// TestTFAWLimitsActivates: five row-miss requests to five banks of one
// rank; the fifth ACT must wait for the tFAW window after the first.
func TestTFAWLimitsActivates(t *testing.T) {
	eng, ch, _, tm := testChannel(t)
	var first, fifth event.Time
	for i := 0; i < 5; i++ {
		i := i
		ch.Submit(&Request{
			Coord: Coord{Bank: i, Row: 7},
			OnComplete: func(n event.Time) {
				if i == 0 {
					first = n
				}
				if i == 4 {
					fifth = n
				}
			},
		})
	}
	eng.RunUntil(1_000_000)
	// The 5th activate can't start before tFAW after the 1st; its data
	// lands at least tFAW - 4*readSpacing later than the 1st access's.
	minGap := cpu(tm.TFAW) - 4*cpu(tm.TBURST)
	if fifth-first < minGap {
		t.Fatalf("five-activate window: gap %d < %d (tFAW not enforced)", fifth-first, minGap)
	}
}

// TestRankSwitchPenalty: alternating reads between ranks must be slower
// than the same stream within one rank (tRTRS).
func TestRankSwitchPenalty(t *testing.T) {
	run := func(alternate bool) event.Time {
		eng, ch, _, _ := testChannel(t)
		var last event.Time
		for i := 0; i < 16; i++ {
			rank := 0
			if alternate && i%2 == 1 {
				rank = 1
			}
			ch.Submit(&Request{
				Coord:      Coord{Rank: rank, Bank: 0, Row: 1, Col: i},
				OnComplete: func(n event.Time) { last = n },
			})
		}
		eng.RunUntil(1_000_000)
		return last
	}
	same := run(false)
	alt := run(true)
	if alt <= same {
		t.Fatalf("rank-alternating stream %d not slower than same-rank %d", alt, same)
	}
}

// TestStreamingBandwidth: a long row-hit stream must approach one burst
// per tCCD (the data bus limit), i.e. ~8 CPU cycles per 64B line.
func TestStreamingBandwidth(t *testing.T) {
	eng, ch, org, tm := testChannel(t)
	const n = 256
	var last event.Time
	done := 0
	for i := 0; i < n; i++ {
		ch.Submit(&Request{
			Coord:      Coord{Row: 3, Col: i % org.LinesPerRow()},
			OnComplete: func(now event.Time) { done++; last = now },
		})
	}
	eng.RunUntil(10_000_000)
	if done != n {
		t.Fatalf("%d/%d done", done, n)
	}
	perLine := float64(last) / n
	ideal := float64(cpu(tm.TCCD))
	if perLine > ideal*1.5 {
		t.Fatalf("streaming at %.1f cycles/line, ideal %.1f: row hits not exploited", perLine, ideal)
	}
}

// TestWriteDrainHysteresis: once draining starts it continues to the low
// watermark even if a read arrives.
func TestWriteDrainHysteresis(t *testing.T) {
	eng, ch, org, _ := testChannel(t)
	for i := 0; i < org.WriteDrainHigh; i++ {
		ch.Submit(&Request{Coord: Coord{Bank: i % 8, Row: uint32(i / 8), Col: i}, Write: true})
	}
	// Run a moment so draining engages.
	eng.RunUntil(200)
	readDone := event.Time(0)
	ch.Submit(&Request{Coord: Coord{Bank: 7, Row: 999}, OnComplete: func(n event.Time) { readDone = n }})
	eng.RunUntil(1_000_000)
	if readDone == 0 {
		t.Fatal("read starved forever")
	}
	s := ch.Stats()
	if s.Writes == 0 {
		t.Fatal("no writes drained")
	}
}

// TestRowHitRateHighForPackedPattern: accesses emulating a packed ORAM
// subtree (sequential lines) should show a high row-hit rate.
func TestRowHitRateHighForPackedPattern(t *testing.T) {
	eng, ch, org, _ := testChannel(t)
	m := NewMapper(org, org.RanksPerChannel())
	for line := uint64(0); line < 512; line++ {
		ch.Submit(&Request{Coord: m.Map(line)})
	}
	eng.RunUntil(10_000_000)
	s := ch.Stats()
	rate := float64(s.RowHits) / float64(s.Reads)
	if rate < 0.9 {
		t.Fatalf("sequential row-hit rate %.2f, want ≥ 0.9", rate)
	}
}

// TestChannelsIndependent: two channels don't interfere.
func TestChannelsIndependent(t *testing.T) {
	eng := &event.Engine{}
	org := config.DefaultOrg(1)
	tm := config.DDR31600()
	a := NewChannel(eng, "a", org, tm, 2)
	b := NewChannel(eng, "b", org, tm, 2)
	var ta, tb event.Time
	a.Submit(&Request{Coord: Coord{Row: 1}, OnComplete: func(n event.Time) { ta = n }})
	b.Submit(&Request{Coord: Coord{Row: 1}, OnComplete: func(n event.Time) { tb = n }})
	eng.RunUntil(1_000_000)
	if ta != tb {
		t.Fatalf("identical requests on separate channels finished at %d and %d", ta, tb)
	}
}

// TestReadLatencyStat: AvgReadLatency matches the observed completion.
func TestReadLatencyStat(t *testing.T) {
	eng, ch, _, tm := testChannel(t)
	var done event.Time
	ch.Submit(&Request{Coord: Coord{Row: 2}, OnComplete: func(n event.Time) { done = n }})
	eng.RunUntil(1_000_000)
	want := float64(cpu(tm.TRCD + tm.CL + tm.TBURST))
	s := ch.Stats()
	if s.AvgReadLatency() != want || event.Time(s.AvgReadLatency()) != done {
		t.Fatalf("avg latency %v, completion %d, want %v", s.AvgReadLatency(), done, want)
	}
}
