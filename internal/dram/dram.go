// Package dram implements an event-driven DDR3 memory-channel model: ranks,
// banks, row buffers, the full first-order command timing set
// (tRCD/tRP/CL/CWL/tRAS/tRRD/tFAW/tCCD/tWTR/tWR/tRTP/tRTRS/tBURST), periodic
// refresh, and rank power-down states. Scheduling is FR-FCFS with read
// priority and a write-drain high/low watermark, following USIMM (the
// simulator used by the paper).
//
// One Channel models either a host memory channel (baseline protocols) or
// the DRAM-facing side of one SDIMM's secure buffer (the on-DIMM channel).
// Package dram also provides Link, a bus-occupancy model for the host
// channel when it carries only CPU<->secure-buffer transfers.
//
// All externally visible times are in CPU cycles (the event.Engine clock);
// timing parameters are converted from memory-command cycles on
// construction.
package dram

import (
	"fmt"
	"strconv"

	"sdimm/internal/config"
	"sdimm/internal/event"
	"sdimm/internal/telemetry"
)

// Coord addresses one cache line within a channel.
type Coord struct {
	Rank int
	Bank int
	Row  uint32
	Col  int // line index within the row
}

// Request is one cache-line read or write presented to a channel.
type Request struct {
	Coord Coord
	Write bool
	// OnComplete, if non-nil, fires when the data burst finishes.
	OnComplete func(now event.Time)

	arrive int64
	id     uint64
	opened bool // this request triggered an ACT (used for row-hit stats)
}

// RankStats accumulates per-rank activity and power-state residency.
type RankStats struct {
	Activates  uint64
	Reads      uint64
	Writes     uint64
	RowHits    uint64 // column commands that hit the open row
	Refreshes  uint64
	TActive    uint64 // cycles with ≥1 open bank, powered up
	TPrecharge uint64 // cycles all banks closed, powered up
	TPowerDown uint64 // cycles in power-down
	Wakeups    uint64
}

// Stats accumulates per-channel activity.
type Stats struct {
	Reads       uint64
	Writes      uint64
	RowHits     uint64
	Activates   uint64
	Precharges  uint64
	Refreshes   uint64
	BytesRead   uint64
	BytesWrite  uint64
	ReadLatency uint64 // summed queue-entry to data-completion, CPU cycles
	PerRank     []RankStats
}

// AvgReadLatency returns mean read latency in CPU cycles.
func (s *Stats) AvgReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ReadLatency) / float64(s.Reads)
}

type bank struct {
	open      bool
	row       uint32
	nextAct   int64
	nextRead  int64
	nextWrite int64
	nextPre   int64
}

// bankList is the per-bank request FIFO.
type bankList struct {
	reads  []*Request
	writes []*Request
}

type rank struct {
	idx        int
	banks      []bank
	actTimes   [4]int64 // ring buffer of recent ACT issue times (tFAW)
	actIdx     int
	nextRead   int64 // write-to-read (tWTR) constraint, rank-wide
	refreshEnd int64
	poweredUp  bool
	wakeAt     int64 // when exiting power-down completes
	lastUse    int64

	// Residency accounting.
	openBanks int
	accrueAt  int64
	stats     *RankStats
}

func (r *rank) accrue(now int64) {
	if now <= r.accrueAt {
		return
	}
	d := uint64(now - r.accrueAt)
	switch {
	case !r.poweredUp:
		r.stats.TPowerDown += d
	case r.openBanks > 0:
		r.stats.TActive += d
	default:
		r.stats.TPrecharge += d
	}
	r.accrueAt = now
}

func (r *rank) fawReady() int64 {
	// The oldest of the last four ACTs bounds the next one.
	return r.actTimes[r.actIdx]
}

func (r *rank) pushAct(t, tFAW int64) {
	r.actTimes[r.actIdx] = t + tFAW
	r.actIdx = (r.actIdx + 1) % len(r.actTimes)
}

// CommandKind identifies a DDR command for bus observers.
type CommandKind int

// DDR bus commands visible to a probe on the command bus.
const (
	CmdActivate CommandKind = iota
	CmdRead
	CmdWrite
	CmdPrecharge
	CmdRefresh
)

// String names the command.
func (k CommandKind) String() string {
	switch k {
	case CmdActivate:
		return "ACT"
	case CmdRead:
		return "RD"
	case CmdWrite:
		return "WR"
	case CmdPrecharge:
		return "PRE"
	case CmdRefresh:
		return "REF"
	}
	return "?"
}

// Channel is one DDR channel with its memory controller.
type Channel struct {
	Name string

	// Observer, when set, sees every command on the (untrusted) bus with
	// its bank address — exactly what a logic analyzer probing the DIMM
	// would capture. Used by the attacker-view analysis.
	Observer func(now event.Time, kind CommandKind, coord Coord)

	eng   *event.Engine
	ranks []*rank

	// Timing in CPU cycles.
	ratio                                 int64
	tCL, tCWL, tRCD, tRP, tRAS, tRC       int64
	tRRD, tFAW, tWTR, tWR, tRTP           int64
	tCCD, tBURST, tRTRS, tRFC, tREFI, tXP int64
	lineBytes, linesPerRow, rowsPerBank   int

	// Per-bank FIFO queues (index rank*banksPerRank + bank) with global
	// read/write counts; FR-FCFS scans banks, not requests.
	bq      []bankList
	nReads  int
	nWrites int

	cmdBusFree  int64
	dataBusFree int64
	dataBusRank int
	nextWriteCh int64 // channel-wide read-to-write bus turnaround
	draining    bool
	nextID      uint64

	evalScheduled bool
	evalAt        int64
	evalHandle    event.Handle

	// AutoPowerDown, when set, moves idle ranks into power-down after
	// IdleThreshold cycles without traffic (the paper's low-power mode).
	AutoPowerDown bool
	IdleThreshold int64

	drainHigh, drainLow int

	stats Stats
	tm    *channelMetrics
}

// channelMetrics holds the telemetry handles a Channel updates alongside
// its Stats, resolved once in EnableTelemetry so the issue path stays
// allocation-free.
type channelMetrics struct {
	reads, writes, rowHits         *telemetry.Counter
	activates, precharges          *telemetry.Counter
	refreshes                      *telemetry.Counter
	refreshStallCycles             *telemetry.Counter
	pending                        *telemetry.Gauge
	readLatency                    *telemetry.Histogram
	rankReads, rankWrites          []*telemetry.Counter
	rankRowHits, rankActivates     []*telemetry.Counter
	rankRefreshes, rankStallCycles []*telemetry.Counter
}

// EnableTelemetry mirrors channel and per-rank activity into reg under the
// dram.* namespace, labelled with the channel name (and rank index for the
// per-rank series). Call once, before or during simulation.
func (c *Channel) EnableTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	tm := &channelMetrics{
		reads:              reg.Counter("dram.reads", "chan", c.Name),
		writes:             reg.Counter("dram.writes", "chan", c.Name),
		rowHits:            reg.Counter("dram.row_hits", "chan", c.Name),
		activates:          reg.Counter("dram.activates", "chan", c.Name),
		precharges:         reg.Counter("dram.precharges", "chan", c.Name),
		refreshes:          reg.Counter("dram.refreshes", "chan", c.Name),
		refreshStallCycles: reg.Counter("dram.refresh_stall_cycles", "chan", c.Name),
		pending:            reg.Gauge("dram.pending", "chan", c.Name),
		readLatency:        reg.Histogram("dram.read_latency", 32, 2048, "chan", c.Name),
	}
	for i := range c.ranks {
		r := strconv.Itoa(i)
		tm.rankReads = append(tm.rankReads, reg.Counter("dram.reads", "chan", c.Name, "rank", r))
		tm.rankWrites = append(tm.rankWrites, reg.Counter("dram.writes", "chan", c.Name, "rank", r))
		tm.rankRowHits = append(tm.rankRowHits, reg.Counter("dram.row_hits", "chan", c.Name, "rank", r))
		tm.rankActivates = append(tm.rankActivates, reg.Counter("dram.activates", "chan", c.Name, "rank", r))
		tm.rankRefreshes = append(tm.rankRefreshes, reg.Counter("dram.refreshes", "chan", c.Name, "rank", r))
		tm.rankStallCycles = append(tm.rankStallCycles, reg.Counter("dram.refresh_stall_cycles", "chan", c.Name, "rank", r))
	}
	c.tm = tm
}

// NewChannel builds a channel with ranksPerChannel ranks using the given
// organization and timing.
func NewChannel(eng *event.Engine, name string, org config.Org, tm config.Timing, ranksPerChannel int) *Channel {
	r := int64(org.CPUCyclesPerMemCycle)
	c := &Channel{
		Name:          name,
		eng:           eng,
		ratio:         r,
		tCL:           int64(tm.CL) * r,
		tCWL:          int64(tm.CWL) * r,
		tRCD:          int64(tm.TRCD) * r,
		tRP:           int64(tm.TRP) * r,
		tRAS:          int64(tm.TRAS) * r,
		tRC:           int64(tm.TRC) * r,
		tRRD:          int64(tm.TRRD) * r,
		tFAW:          int64(tm.TFAW) * r,
		tWTR:          int64(tm.TWTR) * r,
		tWR:           int64(tm.TWR) * r,
		tRTP:          int64(tm.TRTP) * r,
		tCCD:          int64(tm.TCCD) * r,
		tBURST:        int64(tm.TBURST) * r,
		tRTRS:         int64(tm.TRTRS) * r,
		tRFC:          int64(tm.TRFC) * r,
		tREFI:         int64(tm.TREFI) * r,
		tXP:           int64(tm.TXP) * r,
		lineBytes:     org.LineBytes,
		linesPerRow:   org.LinesPerRow(),
		rowsPerBank:   org.RowsPerBank,
		dataBusRank:   -1,
		drainHigh:     org.WriteDrainHigh,
		drainLow:      org.WriteDrainLow,
		IdleThreshold: 4 * int64(tm.TREFI) * r / 16,
	}
	c.stats.PerRank = make([]RankStats, ranksPerChannel)
	c.bq = make([]bankList, ranksPerChannel*org.BanksPerRank)
	for i := 0; i < ranksPerChannel; i++ {
		rk := &rank{
			idx:       i,
			banks:     make([]bank, org.BanksPerRank),
			poweredUp: true,
			stats:     &c.stats.PerRank[i],
		}
		c.ranks = append(c.ranks, rk)
		c.scheduleRefresh(rk, c.tREFI)
	}
	return c
}

// Ranks returns the number of ranks on the channel.
func (c *Channel) Ranks() int { return len(c.ranks) }

// Banks returns the number of banks per rank.
func (c *Channel) Banks() int { return len(c.ranks[0].banks) }

// Stats returns a snapshot of channel statistics with residency accounting
// brought up to the current time.
func (c *Channel) Stats() Stats {
	now := int64(c.eng.Now())
	for _, rk := range c.ranks {
		rk.accrue(now)
	}
	s := c.stats
	s.PerRank = append([]RankStats(nil), c.stats.PerRank...)
	return s
}

// Pending reports queued (not yet completed) requests.
func (c *Channel) Pending() int { return c.nReads + c.nWrites }

func (c *Channel) bankIdx(co Coord) int {
	return co.Rank*len(c.ranks[0].banks) + co.Bank
}

// Submit enqueues a request. The channel takes ownership of r.
func (c *Channel) Submit(r *Request) {
	if r.Coord.Rank < 0 || r.Coord.Rank >= len(c.ranks) {
		panic(fmt.Sprintf("dram %s: rank %d out of range", c.Name, r.Coord.Rank))
	}
	if r.Coord.Bank < 0 || r.Coord.Bank >= len(c.ranks[0].banks) {
		panic(fmt.Sprintf("dram %s: bank %d out of range", c.Name, r.Coord.Bank))
	}
	if r.Coord.Col < 0 || r.Coord.Col >= c.linesPerRow {
		panic(fmt.Sprintf("dram %s: column %d out of range", c.Name, r.Coord.Col))
	}
	r.arrive = int64(c.eng.Now())
	r.id = c.nextID
	c.nextID++
	bl := &c.bq[c.bankIdx(r.Coord)]
	if r.Write {
		bl.writes = append(bl.writes, r)
		c.nWrites++
	} else {
		bl.reads = append(bl.reads, r)
		c.nReads++
	}
	if c.tm != nil {
		c.tm.pending.Set(int64(c.Pending()))
	}
	c.wake(r.Coord.Rank)
	c.kick(r.arrive)
}

func (c *Channel) wake(rankIdx int) {
	rk := c.ranks[rankIdx]
	now := int64(c.eng.Now())
	rk.lastUse = now
	if !rk.poweredUp {
		rk.accrue(now)
		rk.poweredUp = true
		rk.wakeAt = now + c.tXP
		rk.stats.Wakeups++
	}
}

// PowerDown forces a rank into power-down (used by the low-power layout,
// which knows which rank the next ORAM access needs). In-flight constraints
// are preserved: the rank wakes automatically when a request targets it.
func (c *Channel) PowerDown(rankIdx int) {
	rk := c.ranks[rankIdx]
	if !rk.poweredUp {
		return
	}
	// Never power down a rank with queued work.
	banks := len(c.ranks[0].banks)
	for i := rankIdx * banks; i < (rankIdx+1)*banks; i++ {
		if len(c.bq[i].reads) > 0 || len(c.bq[i].writes) > 0 {
			return
		}
	}
	now := int64(c.eng.Now())
	rk.accrue(now)
	rk.poweredUp = false
}

// kick schedules a scheduler evaluation no later than at. At most one
// evaluation event is pending at a time: rescheduling earlier cancels the
// superseded event (leaving it live would let stale evaluations multiply).
func (c *Channel) kick(at int64) {
	if at < int64(c.eng.Now()) {
		at = int64(c.eng.Now())
	}
	if c.evalScheduled {
		if c.evalAt <= at {
			return
		}
		c.evalHandle.Cancel()
	}
	c.evalScheduled = true
	c.evalAt = at
	c.evalHandle = c.eng.Schedule(event.Time(at), c.evaluate)
}

func (c *Channel) evaluate() {
	c.evalScheduled = false
	now := int64(c.eng.Now())
	if now < c.cmdBusFree {
		c.kick(c.cmdBusFree)
		return
	}
	if c.nReads == 0 && c.nWrites == 0 {
		c.maybePowerDown(now)
		return
	}

	// Write-drain state machine (USIMM-style watermarks).
	if c.nWrites >= c.drainHigh {
		c.draining = true
	}
	if c.draining && c.nWrites <= c.drainLow {
		c.draining = false
	}
	serveWrites := (c.draining || c.nReads == 0) && c.nWrites > 0

	issued, nextTry := c.tryIssue(now, serveWrites)
	if !issued && !serveWrites && c.nWrites > 0 {
		// Reads blocked on timing: opportunistically look at writes.
		wIssued, wNext := c.tryIssue(now, true)
		if wIssued {
			issued = true
		} else if wNext < nextTry {
			nextTry = wNext
		}
	}
	if issued {
		c.kick(c.cmdBusFree)
		return
	}
	if nextTry <= now {
		nextTry = now + c.ratio
	}
	c.kick(nextTry)
}

const farFuture = int64(1) << 62

// rowHitLookahead bounds how deep into a bank's FIFO the scheduler looks
// for a request matching the open row, mirroring the bounded associative
// search of a real FR-FCFS scheduler.
const rowHitLookahead = 8

// tryIssue attempts to issue one command for the selected queue class
// (reads or writes). FR-FCFS: among banks with an open row, the oldest
// request hitting that row is preferred; otherwise the oldest request
// needing PRE or ACT. A bank whose oldest request is a row hit is never
// precharged under it. Returns whether a command was issued and, if not,
// the earliest time one might become issuable.
func (c *Channel) tryIssue(now int64, isWrite bool) (bool, int64) {
	nextTry := farFuture
	banks := len(c.ranks[0].banks)

	var bestHit, bestMiss *Request
	var bestHitPos int
	for idx := range c.bq {
		bl := &c.bq[idx]
		list := bl.reads
		if isWrite {
			list = bl.writes
		}
		if len(list) == 0 {
			continue
		}
		rk := c.ranks[idx/banks]
		b := &rk.banks[idx%banks]

		if b.open {
			// Look for the oldest request hitting the open row.
			depth := len(list)
			if depth > rowHitLookahead {
				depth = rowHitLookahead
			}
			hitPos := -1
			for i := 0; i < depth; i++ {
				if list[i].Coord.Row == b.row {
					hitPos = i
					break
				}
			}
			if hitPos >= 0 {
				ready := c.colReady(rk, b, isWrite)
				if ready <= now {
					r := list[hitPos]
					if bestHit == nil || r.id < bestHit.id {
						bestHit, bestHitPos = r, hitPos
					}
				} else if ready < nextTry {
					nextTry = ready
				}
				// Never precharge under a pending row hit.
				continue
			}
			// Row conflict: precharge for the oldest request.
			ready := maxi64(b.nextPre, rk.wakeAt, rk.refreshEnd)
			if ready <= now {
				r := list[0]
				if bestMiss == nil || r.id < bestMiss.id {
					bestMiss = r
				}
			} else if ready < nextTry {
				nextTry = ready
			}
			continue
		}
		// Closed bank: activate for the oldest request.
		ready := maxi64(b.nextAct, rk.fawReady(), rk.wakeAt, rk.refreshEnd)
		if ready <= now {
			r := list[0]
			if bestMiss == nil || r.id < bestMiss.id {
				bestMiss = r
			}
		} else if ready < nextTry {
			nextTry = ready
		}
	}

	if bestHit != nil {
		rk := c.ranks[bestHit.Coord.Rank]
		b := &rk.banks[bestHit.Coord.Bank]
		c.removeAt(bestHit, bestHitPos)
		c.issueColumn(now, bestHit, rk, b, !bestHit.opened)
		return true, 0
	}
	if bestMiss != nil {
		rk := c.ranks[bestMiss.Coord.Rank]
		b := &rk.banks[bestMiss.Coord.Bank]
		if b.open {
			c.issuePrecharge(now, rk, b)
		} else {
			bestMiss.opened = true
			c.issueActivate(now, bestMiss, rk, b)
		}
		return true, 0
	}
	return false, nextTry
}

// removeAt removes a request from its bank FIFO at a known position.
func (c *Channel) removeAt(r *Request, pos int) {
	bl := &c.bq[c.bankIdx(r.Coord)]
	if r.Write {
		bl.writes = append(bl.writes[:pos], bl.writes[pos+1:]...)
		c.nWrites--
	} else {
		bl.reads = append(bl.reads[:pos], bl.reads[pos+1:]...)
		c.nReads--
	}
	if c.tm != nil {
		c.tm.pending.Set(int64(c.Pending()))
	}
}

func (c *Channel) colReady(rk *rank, b *bank, isWrite bool) int64 {
	if isWrite {
		ready := maxi64(b.nextWrite, c.nextWriteCh, rk.wakeAt, rk.refreshEnd)
		// Data bus: burst starts tCWL after the command.
		busNeed := c.dataBusFree - c.tCWL
		return maxi64(ready, busNeed)
	}
	ready := maxi64(b.nextRead, rk.nextRead, rk.wakeAt, rk.refreshEnd)
	busNeed := c.dataBusFree - c.tCL
	if c.dataBusRank >= 0 && c.ranks[c.dataBusRank] != rk {
		busNeed += c.tRTRS
	}
	return maxi64(ready, busNeed)
}

func (c *Channel) issueColumn(now int64, r *Request, rk *rank, b *bank, hit bool) {
	c.cmdBusFree = now + c.ratio
	rankIdx := r.Coord.Rank
	if c.Observer != nil {
		k := CmdRead
		if r.Write {
			k = CmdWrite
		}
		c.Observer(event.Time(now), k, r.Coord)
	}
	if r.Write {
		end := now + c.tCWL + c.tBURST
		c.dataBusFree = end
		c.dataBusRank = rankIdx
		b.nextWrite = maxi64(b.nextWrite, now+c.tCCD)
		rk.nextRead = maxi64(rk.nextRead, end+c.tWTR)
		b.nextPre = maxi64(b.nextPre, end+c.tWR)
		c.stats.Writes++
		c.stats.BytesWrite += uint64(c.lineBytes)
		rk.stats.Writes++
		if hit {
			c.stats.RowHits++
			rk.stats.RowHits++
		}
		if c.tm != nil {
			c.tm.writes.Inc()
			c.tm.rankWrites[rankIdx].Inc()
			if hit {
				c.tm.rowHits.Inc()
				c.tm.rankRowHits[rankIdx].Inc()
			}
		}
		c.complete(r, end)
	} else {
		end := now + c.tCL + c.tBURST
		c.dataBusFree = end
		c.dataBusRank = rankIdx
		b.nextRead = maxi64(b.nextRead, now+c.tCCD)
		// Read-to-write bus turnaround, channel-wide.
		c.nextWriteCh = maxi64(c.nextWriteCh, end+c.tRTRS-c.tCWL)
		b.nextPre = maxi64(b.nextPre, now+c.tRTP)
		c.stats.Reads++
		c.stats.BytesRead += uint64(c.lineBytes)
		rk.stats.Reads++
		if hit {
			c.stats.RowHits++
			rk.stats.RowHits++
		}
		c.stats.ReadLatency += uint64(end - r.arrive)
		if c.tm != nil {
			c.tm.reads.Inc()
			c.tm.rankReads[rankIdx].Inc()
			if hit {
				c.tm.rowHits.Inc()
				c.tm.rankRowHits[rankIdx].Inc()
			}
			c.tm.readLatency.Add(uint64(end - r.arrive))
		}
		c.complete(r, end)
	}
	rk.lastUse = now
}

func (c *Channel) complete(r *Request, at int64) {
	if r.OnComplete == nil {
		return
	}
	cb := r.OnComplete
	c.eng.Schedule(event.Time(at), func() { cb(event.Time(at)) })
}

func (c *Channel) issueActivate(now int64, r *Request, rk *rank, b *bank) {
	c.cmdBusFree = now + c.ratio
	if c.Observer != nil {
		c.Observer(event.Time(now), CmdActivate, r.Coord)
	}
	if rk.openBanks == 0 {
		rk.accrue(now)
	}
	b.open = true
	b.row = r.Coord.Row
	rk.openBanks++
	b.nextRead = now + c.tRCD
	b.nextWrite = now + c.tRCD
	b.nextPre = maxi64(b.nextPre, now+c.tRAS)
	b.nextAct = now + c.tRC
	for i := range rk.banks {
		ob := &rk.banks[i]
		if ob != b {
			ob.nextAct = maxi64(ob.nextAct, now+c.tRRD)
		}
	}
	rk.pushAct(now, c.tFAW)
	c.stats.Activates++
	rk.stats.Activates++
	if c.tm != nil {
		c.tm.activates.Inc()
		c.tm.rankActivates[rk.idx].Inc()
	}
	rk.lastUse = now
}

func (c *Channel) issuePrecharge(now int64, rk *rank, b *bank) {
	c.cmdBusFree = now + c.ratio
	b.open = false
	rk.openBanks--
	if rk.openBanks == 0 {
		rk.accrue(now)
	}
	b.nextAct = maxi64(b.nextAct, now+c.tRP)
	c.stats.Precharges++
	if c.tm != nil {
		c.tm.precharges.Inc()
	}
	rk.lastUse = now
}

func (c *Channel) scheduleRefresh(rk *rank, at int64) {
	c.eng.Schedule(event.Time(at), func() { c.refresh(rk, at) })
}

func (c *Channel) refresh(rk *rank, due int64) {
	now := int64(c.eng.Now())
	// All banks must be precharged; compute when that can happen.
	start := now
	for i := range rk.banks {
		b := &rk.banks[i]
		if b.open {
			if b.nextPre > start {
				start = b.nextPre
			}
		}
	}
	closedAny := false
	for i := range rk.banks {
		b := &rk.banks[i]
		if b.open {
			b.open = false
			closedAny = true
		}
	}
	if closedAny {
		rk.accrue(start)
		rk.openBanks = 0
		start += c.tRP
	}
	if !rk.poweredUp {
		// Self-refresh semantics: refreshed in place, no state change.
		rk.stats.Refreshes++
	} else {
		rk.refreshEnd = start + c.tRFC
		for i := range rk.banks {
			b := &rk.banks[i]
			b.nextAct = maxi64(b.nextAct, rk.refreshEnd)
		}
		rk.stats.Refreshes++
		c.stats.Refreshes++
		if c.tm != nil {
			c.tm.refreshes.Inc()
			c.tm.rankRefreshes[rk.idx].Inc()
			if stall := rk.refreshEnd - now; stall > 0 {
				c.tm.refreshStallCycles.Add(uint64(stall))
				c.tm.rankStallCycles[rk.idx].Add(uint64(stall))
			}
		}
	}
	c.scheduleRefresh(rk, due+c.tREFI)
	c.kick(rk.refreshEnd)
}

func (c *Channel) maybePowerDown(now int64) {
	if !c.AutoPowerDown {
		return
	}
	for i, rk := range c.ranks {
		if rk.poweredUp && rk.openBanks == 0 && now-rk.lastUse >= c.IdleThreshold {
			c.PowerDown(i)
		}
	}
}

// IdleSweep lets callers trigger the auto power-down check (e.g. from a
// periodic housekeeping event in the simulator).
func (c *Channel) IdleSweep() { c.maybePowerDown(int64(c.eng.Now())) }

func maxi64(vs ...int64) int64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
