package dram

import (
	"fmt"

	"sdimm/internal/config"
)

// Mapper translates linear line addresses (cache-line index within one
// channel's physical space) into DRAM coordinates. The baseline policy
// spreads consecutive lines across banks and ranks after exhausting a row
// (open-page friendly: row:rank:bank:column from high to low bits), which is
// the optimized layout the paper's baseline uses once ORAM subtrees are
// packed into rows.
type Mapper struct {
	linesPerRow int
	banks       int
	ranks       int
	rowsPerBank int
}

// NewMapper builds a mapper for one channel of the organization with the
// given rank count.
func NewMapper(org config.Org, ranks int) *Mapper {
	return &Mapper{
		linesPerRow: org.LinesPerRow(),
		banks:       org.BanksPerRank,
		ranks:       ranks,
		rowsPerBank: org.RowsPerBank,
	}
}

// Lines returns the channel capacity in cache lines.
func (m *Mapper) Lines() uint64 {
	return uint64(m.linesPerRow) * uint64(m.banks) * uint64(m.ranks) * uint64(m.rowsPerBank)
}

// Map converts a linear line address to a coordinate. Addresses wrap modulo
// the channel capacity, so simulated address spaces larger than the modelled
// channel alias rather than fault (documented simulator behaviour).
func (m *Mapper) Map(line uint64) Coord {
	line %= m.Lines()
	col := int(line % uint64(m.linesPerRow))
	line /= uint64(m.linesPerRow)
	bankIdx := int(line % uint64(m.banks))
	line /= uint64(m.banks)
	rankIdx := int(line % uint64(m.ranks))
	line /= uint64(m.ranks)
	row := uint32(line % uint64(m.rowsPerBank))
	return Coord{Rank: rankIdx, Bank: bankIdx, Row: row, Col: col}
}

// MapToRank maps a linear line address into a fixed rank, spreading lines
// across that rank's banks and rows. The low-power ORAM layout uses this to
// pin whole subtrees to one rank (Section III-E).
func (m *Mapper) MapToRank(line uint64, rankIdx int) Coord {
	if rankIdx < 0 || rankIdx >= m.ranks {
		panic(fmt.Sprintf("dram: rank %d out of range [0,%d)", rankIdx, m.ranks))
	}
	perRank := uint64(m.linesPerRow) * uint64(m.banks) * uint64(m.rowsPerBank)
	line %= perRank
	col := int(line % uint64(m.linesPerRow))
	line /= uint64(m.linesPerRow)
	bankIdx := int(line % uint64(m.banks))
	line /= uint64(m.banks)
	row := uint32(line % uint64(m.rowsPerBank))
	return Coord{Rank: rankIdx, Bank: bankIdx, Row: row, Col: col}
}
