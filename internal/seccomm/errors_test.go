package seccomm

import (
	"errors"
	"testing"
)

// TestErrorPathsDistinct drives every link-corruption scenario and checks
// that each returns its own wrapped error, so the fault layer (and an
// operator reading logs) can attribute what happened on the channel. All of
// them also satisfy errors.Is(err, ErrAuth) except truncation, which never
// reaches the MAC check. Tampering and cross-session replay are
// cryptographically indistinguishable (both are "no counter in the window
// authenticates this frame") and share ErrAuth.
func TestErrorPathsDistinct(t *testing.T) {
	cases := []struct {
		name    string
		run     func(t *testing.T) error
		want    error
		notWant []error
	}{
		{
			name: "tampered ciphertext",
			run: func(t *testing.T) error {
				host, dev := pair(t)
				f := host.Seal([]byte("payload"))
				f[0] ^= 0x40
				_, err := dev.Open(f)
				return err
			},
			want:    ErrAuth,
			notWant: []error{ErrOutOfOrder, ErrReplayed, ErrShortMessage},
		},
		{
			name: "truncated frame",
			run: func(t *testing.T) error {
				host, dev := pair(t)
				f := host.Seal([]byte("payload"))
				_, err := dev.Open(f[:MACSize-1])
				return err
			},
			want:    ErrShortMessage,
			notWant: []error{ErrAuth},
		},
		{
			name: "out-of-order counters",
			run: func(t *testing.T) error {
				host, dev := pair(t)
				_ = host.Seal([]byte("first"))
				second := host.Seal([]byte("second"))
				_, err := dev.Open(second)
				return err
			},
			want:    ErrOutOfOrder,
			notWant: []error{ErrReplayed, ErrShortMessage},
		},
		{
			name: "same-session replay",
			run: func(t *testing.T) error {
				host, dev := pair(t)
				f := host.Seal([]byte("payload"))
				if _, err := dev.Open(f); err != nil {
					t.Fatalf("first open: %v", err)
				}
				_, err := dev.Open(f)
				return err
			},
			want:    ErrReplayed,
			notWant: []error{ErrOutOfOrder, ErrShortMessage},
		},
		{
			name: "cross-session replay",
			run: func(t *testing.T) error {
				hostA, devA := pair(t)
				_, devB := pair(t)
				f := hostA.Seal([]byte("payload"))
				if _, err := devA.Open(f); err != nil {
					t.Fatalf("legitimate open: %v", err)
				}
				// Same wire bytes injected into a different session: the
				// MAC key differs, so no counter in the window matches.
				_, err := devB.Open(f)
				return err
			},
			want:    ErrAuth,
			notWant: []error{ErrOutOfOrder, ErrReplayed, ErrShortMessage},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run(t)
			if err == nil {
				t.Fatal("corrupted frame accepted")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
			for _, nw := range tc.notWant {
				if errors.Is(err, nw) {
					t.Fatalf("error %v should not match %v", err, nw)
				}
			}
		})
	}
}

// TestCounterErrorDetails checks that counter diagnoses expose the expected
// and observed counters — the fault layer keys its ARQ retransmission on
// Got == Expected-1.
func TestCounterErrorDetails(t *testing.T) {
	host, dev := pair(t)
	f := host.Seal([]byte("once"))
	if _, err := dev.Open(f); err != nil {
		t.Fatal(err)
	}
	_, err := dev.Open(f)
	var ce *CounterError
	if !errors.As(err, &ce) {
		t.Fatalf("replay did not yield a CounterError: %v", err)
	}
	if ce.Expected != 1 || ce.Got != 0 {
		t.Fatalf("CounterError = expected %d got %d, want 1/0", ce.Expected, ce.Got)
	}
}

// TestResendFromRetransmitsIdentically checks the retransmission primitive:
// rewinding the send counter and resealing the same body reproduces the
// exact wire frame, which the peer (who never saw it) accepts normally.
func TestResendFromRetransmitsIdentically(t *testing.T) {
	host, dev := pair(t)
	base := host.SendCounter()
	first := host.Seal([]byte("lost in flight"))
	if err := host.ResendFrom(base); err != nil {
		t.Fatal(err)
	}
	second := host.Seal([]byte("lost in flight"))
	if string(first) != string(second) {
		t.Fatal("retransmitted frame differs from original")
	}
	if got, err := dev.Open(second); err != nil || string(got) != "lost in flight" {
		t.Fatalf("retransmission rejected: %q %v", got, err)
	}
	if err := host.ResendFrom(host.SendCounter() + 1); err == nil {
		t.Fatal("ResendFrom skipped ahead without error")
	}
}

// TestResyncRealignsAbandonedExchange models an abandoned exchange: the
// host sealed frames the device never accepted and the device sealed a
// response the host never opened. After Resync both directions work again,
// and the abandoned frames are permanently unacceptable.
func TestResyncRealignsAbandonedExchange(t *testing.T) {
	host, dev := pair(t)
	abandoned := host.Seal([]byte("never delivered"))
	lostResp := dev.Seal([]byte("never fetched"))
	Resync(host, dev)
	if _, err := dev.Open(abandoned); !errors.Is(err, ErrReplayed) {
		t.Fatalf("abandoned frame after resync: %v, want ErrReplayed", err)
	}
	if _, err := host.Open(lostResp); !errors.Is(err, ErrReplayed) {
		t.Fatalf("lost response after resync: %v, want ErrReplayed", err)
	}
	fresh := host.Seal([]byte("fresh"))
	if got, err := dev.Open(fresh); err != nil || string(got) != "fresh" {
		t.Fatalf("fresh frame after resync: %q %v", got, err)
	}
	resp := dev.Seal([]byte("fresh resp"))
	if got, err := host.Open(resp); err != nil || string(got) != "fresh resp" {
		t.Fatalf("fresh response after resync: %q %v", got, err)
	}
}
