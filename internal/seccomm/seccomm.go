// Package seccomm implements the secure CPU<->SDIMM communication of
// Section III-B: device authentication through a third-party authority,
// session establishment (the SEND_PKEY / RECEIVE_SECRET exchange of Table
// I), and low-latency counter-mode AES link encryption with message
// authentication for everything that crosses the untrusted memory channel.
//
// Counter-mode was chosen by the paper because the pad (a function of key
// and counter only) can be precomputed while data is in flight, keeping the
// added latency to one XOR. The DDR channel is lossless and ordered, so the
// two endpoints advance their counters in lockstep and no counter needs to
// travel with the data.
package seccomm

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MACSize is the truncated MAC length appended to every sealed message.
const MACSize = 8

// Errors returned by the package.
var (
	ErrAuth         = errors.New("seccomm: message authentication failed")
	ErrShortMessage = errors.New("seccomm: message shorter than MAC")
	ErrUnknownID    = errors.New("seccomm: device not registered with authority")
)

// Device is one trusted secure buffer with a long-term identity key.
type Device struct {
	id   string
	priv *ecdh.PrivateKey
}

// NewDevice mints a device with a fresh X25519 identity key. In production
// this key is fused at manufacturing; here it stands in for the vendor's
// provisioning step.
func NewDevice(id string, random io.Reader) (*Device, error) {
	if random == nil {
		random = rand.Reader
	}
	priv, err := ecdh.X25519().GenerateKey(random)
	if err != nil {
		return nil, fmt.Errorf("seccomm: generating device key: %w", err)
	}
	return &Device{id: id, priv: priv}, nil
}

// ID returns the device identity string.
func (d *Device) ID() string { return d.id }

// PublicKey returns the device's identity public key bytes (the response to
// the SEND_PKEY command).
func (d *Device) PublicKey() []byte { return d.priv.PublicKey().Bytes() }

// Authority is the third-party authenticator (the paper's Verisign
// analogue): it maps device IDs to registered public keys so a host can
// confirm it is talking to genuine secure buffers.
type Authority struct {
	keys map[string][]byte
}

// NewAuthority returns an empty registry.
func NewAuthority() *Authority { return &Authority{keys: make(map[string][]byte)} }

// Register records a device's public key (done by the vendor at
// manufacturing time).
func (a *Authority) Register(d *Device) {
	a.keys[d.ID()] = append([]byte(nil), d.PublicKey()...)
}

// Lookup returns the registered public key for a device ID.
func (a *Authority) Lookup(id string) ([]byte, error) {
	k, ok := a.keys[id]
	if !ok {
		return nil, ErrUnknownID
	}
	return append([]byte(nil), k...), nil
}

// Session is one endpoint of an established secure link. Each endpoint has
// an upstream (CPU -> SDIMM) and downstream (SDIMM -> CPU) cipher state;
// Seal uses the endpoint's send direction and Open its receive direction.
type Session struct {
	send cipherState
	recv cipherState
}

type cipherState struct {
	block   cipher.Block
	macKey  []byte
	counter uint64
}

// Handshake establishes a session pair. The host verifies the device
// against the authority, generates an ephemeral key (the RECEIVE_SECRET
// payload), and both sides derive upstream/downstream session keys from the
// ECDH shared secret. It returns the host endpoint and the device endpoint.
func Handshake(host io.Reader, dev *Device, auth *Authority) (*Session, *Session, error) {
	if host == nil {
		host = rand.Reader
	}
	registered, err := auth.Lookup(dev.ID())
	if err != nil {
		return nil, nil, err
	}
	devPub, err := ecdh.X25519().NewPublicKey(registered)
	if err != nil {
		return nil, nil, fmt.Errorf("seccomm: registered key invalid: %w", err)
	}
	eph, err := ecdh.X25519().GenerateKey(host)
	if err != nil {
		return nil, nil, fmt.Errorf("seccomm: ephemeral key: %w", err)
	}

	// Host side computes the shared secret against the *registered* key, so
	// an impostor device (whose private key does not match the registry)
	// derives a different secret and every subsequent MAC check fails.
	hostSecret, err := eph.ECDH(devPub)
	if err != nil {
		return nil, nil, fmt.Errorf("seccomm: host ECDH: %w", err)
	}
	devSecret, err := dev.priv.ECDH(eph.PublicKey())
	if err != nil {
		return nil, nil, fmt.Errorf("seccomm: device ECDH: %w", err)
	}

	hostSess, err := deriveSession(hostSecret, dev.ID(), true)
	if err != nil {
		return nil, nil, err
	}
	devSess, err := deriveSession(devSecret, dev.ID(), false)
	if err != nil {
		return nil, nil, err
	}
	return hostSess, devSess, nil
}

// deriveSession expands the shared secret into two AES keys and two MAC
// keys via HMAC-SHA256 with direction labels.
func deriveSession(secret []byte, id string, isHost bool) (*Session, error) {
	expand := func(label string) []byte {
		m := hmac.New(sha256.New, secret)
		m.Write([]byte(label))
		m.Write([]byte(id))
		return m.Sum(nil)
	}
	mk := func(label string) (cipherState, error) {
		keys := expand(label)
		block, err := aes.NewCipher(keys[:16])
		if err != nil {
			return cipherState{}, fmt.Errorf("seccomm: aes: %w", err)
		}
		return cipherState{block: block, macKey: keys[16:]}, nil
	}
	up, err := mk("upstream")
	if err != nil {
		return nil, err
	}
	down, err := mk("downstream")
	if err != nil {
		return nil, err
	}
	if isHost {
		return &Session{send: up, recv: down}, nil
	}
	return &Session{send: down, recv: up}, nil
}

// pad XORs data with the AES-CTR keystream for message counter ctr.
func (cs *cipherState) pad(ctr uint64, data []byte) {
	var iv [aes.BlockSize]byte
	binary.BigEndian.PutUint64(iv[:8], ctr)
	stream := cipher.NewCTR(cs.block, iv[:])
	stream.XORKeyStream(data, data)
}

func (cs *cipherState) mac(ctr uint64, ct []byte) []byte {
	m := hmac.New(sha256.New, cs.macKey)
	var c [8]byte
	binary.BigEndian.PutUint64(c[:], ctr)
	m.Write(c[:])
	m.Write(ct)
	return m.Sum(nil)[:MACSize]
}

// Seal encrypts and authenticates a message for the peer, returning
// ciphertext || MAC. The per-direction counter advances; the peer's Open
// must be called in the same order (the DDR bus guarantees ordering).
func (s *Session) Seal(plaintext []byte) []byte {
	cs := &s.send
	out := make([]byte, len(plaintext)+MACSize)
	copy(out, plaintext)
	cs.pad(cs.counter, out[:len(plaintext)])
	copy(out[len(plaintext):], cs.mac(cs.counter, out[:len(plaintext)]))
	cs.counter++
	return out
}

// Open authenticates and decrypts a message produced by the peer's Seal.
func (s *Session) Open(msg []byte) ([]byte, error) {
	cs := &s.recv
	if len(msg) < MACSize {
		return nil, ErrShortMessage
	}
	ct := msg[:len(msg)-MACSize]
	tag := msg[len(msg)-MACSize:]
	want := cs.mac(cs.counter, ct)
	if subtle.ConstantTimeCompare(tag, want) != 1 {
		return nil, ErrAuth
	}
	out := append([]byte(nil), ct...)
	cs.pad(cs.counter, out)
	cs.counter++
	return out, nil
}

// SendCounter exposes the next send counter (used by tests and by the
// simulator's deterministic-traffic assertions).
func (s *Session) SendCounter() uint64 { return s.send.counter }
