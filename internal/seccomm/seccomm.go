// Package seccomm implements the secure CPU<->SDIMM communication of
// Section III-B: device authentication through a third-party authority,
// session establishment (the SEND_PKEY / RECEIVE_SECRET exchange of Table
// I), and low-latency counter-mode AES link encryption with message
// authentication for everything that crosses the untrusted memory channel.
//
// Counter-mode was chosen by the paper because the pad (a function of key
// and counter only) can be precomputed while data is in flight, keeping the
// added latency to one XOR. The DDR channel is lossless and ordered, so the
// two endpoints advance their counters in lockstep and no counter needs to
// travel with the data.
package seccomm

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"io"

	"sdimm/internal/ctrmode"
	"sdimm/internal/telemetry"
)

// MACSize is the truncated MAC length appended to every sealed message.
const MACSize = 8

// Errors returned by the package. ErrOutOfOrder and ErrReplayed wrap
// ErrAuth: both are authentication failures first, with a counter-based
// diagnosis layered on top, so errors.Is(err, ErrAuth) holds for every
// rejected frame.
var (
	ErrAuth         = errors.New("seccomm: message authentication failed")
	ErrShortMessage = errors.New("seccomm: message shorter than MAC")
	ErrUnknownID    = errors.New("seccomm: device not registered with authority")
	// ErrOutOfOrder reports a frame that authenticates under a future
	// counter: earlier frames were lost or the channel reordered traffic.
	ErrOutOfOrder = fmt.Errorf("seccomm: frame from a future counter (lost or reordered traffic): %w", ErrAuth)
	// ErrReplayed reports a frame that authenticates under an already
	// consumed counter: a replay, or the peer retransmitting a frame whose
	// response it never saw.
	ErrReplayed = fmt.Errorf("seccomm: frame for an already-consumed counter (replay or retransmission): %w", ErrAuth)
)

// counterWindow bounds how far Open probes around the expected counter when
// diagnosing a MAC failure. Probing is pure classification: no probe ever
// advances cipher state, so a frame is only ever accepted at the exact
// expected counter.
const counterWindow = 16

// CounterError carries the diagnosis of a counter-mismatched frame: it
// wraps ErrOutOfOrder or ErrReplayed (and therefore ErrAuth) and records
// both the expected counter and the counter the frame authenticated under.
// The fault layer uses Got == Expected-1 to recognize a link-layer
// retransmission of the last accepted frame.
type CounterError struct {
	Expected uint64
	Got      uint64
	kind     error
}

func (e *CounterError) Error() string {
	return fmt.Sprintf("%v (expected counter %d, frame authenticates at %d)", e.kind, e.Expected, e.Got)
}

// Unwrap exposes ErrOutOfOrder or ErrReplayed (each of which wraps ErrAuth).
func (e *CounterError) Unwrap() error { return e.kind }

// Device is one trusted secure buffer with a long-term identity key.
type Device struct {
	id   string
	priv *ecdh.PrivateKey
}

// NewDevice mints a device with a fresh X25519 identity key. In production
// this key is fused at manufacturing; here it stands in for the vendor's
// provisioning step.
func NewDevice(id string, random io.Reader) (*Device, error) {
	if random == nil {
		random = rand.Reader
	}
	priv, err := ecdh.X25519().GenerateKey(random)
	if err != nil {
		return nil, fmt.Errorf("seccomm: generating device key: %w", err)
	}
	return &Device{id: id, priv: priv}, nil
}

// ID returns the device identity string.
func (d *Device) ID() string { return d.id }

// PublicKey returns the device's identity public key bytes (the response to
// the SEND_PKEY command).
func (d *Device) PublicKey() []byte { return d.priv.PublicKey().Bytes() }

// Authority is the third-party authenticator (the paper's Verisign
// analogue): it maps device IDs to registered public keys so a host can
// confirm it is talking to genuine secure buffers.
type Authority struct {
	keys map[string][]byte
}

// NewAuthority returns an empty registry.
func NewAuthority() *Authority { return &Authority{keys: make(map[string][]byte)} }

// Register records a device's public key (done by the vendor at
// manufacturing time).
func (a *Authority) Register(d *Device) {
	a.keys[d.ID()] = append([]byte(nil), d.PublicKey()...)
}

// Lookup returns the registered public key for a device ID.
func (a *Authority) Lookup(id string) ([]byte, error) {
	k, ok := a.keys[id]
	if !ok {
		return nil, ErrUnknownID
	}
	return append([]byte(nil), k...), nil
}

// Metrics mirrors link-crypto activity into telemetry counters under the
// seccomm.* namespace, splitting rejected frames by MAC-failure class. A
// nil *Metrics records nothing, so sessions can stay uninstrumented.
type Metrics struct {
	Seals         *telemetry.Counter // frames sealed (sent)
	Opens         *telemetry.Counter // frames authenticated and decrypted
	AuthFailures  *telemetry.Counter // rejected: tag invalid at every probed counter (tampering)
	Replayed      *telemetry.Counter // rejected: already-consumed counter (replay/retransmission)
	OutOfOrder    *telemetry.Counter // rejected: future counter (loss or reorder)
	ShortMessages *telemetry.Counter // rejected: shorter than the MAC
	Resyncs       *telemetry.Counter // counter realignments after abandonment
}

// NewMetrics resolves the seccomm.* counters in reg (labels fold into each
// name).
func NewMetrics(reg *telemetry.Registry, labels ...string) *Metrics {
	return &Metrics{
		Seals:         reg.Counter("seccomm.seals", labels...),
		Opens:         reg.Counter("seccomm.opens", labels...),
		AuthFailures:  reg.Counter("seccomm.auth_failures", labels...),
		Replayed:      reg.Counter("seccomm.replayed", labels...),
		OutOfOrder:    reg.Counter("seccomm.out_of_order", labels...),
		ShortMessages: reg.Counter("seccomm.short_messages", labels...),
		Resyncs:       reg.Counter("seccomm.resyncs", labels...),
	}
}

func bump(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

func (m *Metrics) observeSeal() {
	if m != nil {
		bump(m.Seals)
	}
}

// observeOpen classifies one Open outcome into the per-class counters.
func (m *Metrics) observeOpen(err error) {
	if m == nil {
		return
	}
	switch {
	case err == nil:
		bump(m.Opens)
	case errors.Is(err, ErrShortMessage):
		bump(m.ShortMessages)
	case errors.Is(err, ErrReplayed):
		bump(m.Replayed)
	case errors.Is(err, ErrOutOfOrder):
		bump(m.OutOfOrder)
	default:
		bump(m.AuthFailures)
	}
}

func (m *Metrics) observeResync() {
	if m != nil {
		bump(m.Resyncs)
	}
}

// Session is one endpoint of an established secure link. Each endpoint has
// an upstream (CPU -> SDIMM) and downstream (SDIMM -> CPU) cipher state;
// Seal uses the endpoint's send direction and Open its receive direction.
// A Session is not safe for concurrent use: the cipher states carry
// reusable keystream and MAC scratch so seal/open never allocate.
type Session struct {
	send cipherState
	recv cipherState
	m    *Metrics
}

// SetMetrics attaches telemetry counters to the session (nil detaches).
// Both endpoints of a link may share one *Metrics to get link totals.
func (s *Session) SetMetrics(m *Metrics) { s.m = m }

type cipherState struct {
	block   cipher.Block
	counter uint64

	// Reusable scratch: the CTR stream state, the keyed HMAC (Reset per
	// message), the 8-byte counter header, and the MAC output buffer.
	stream ctrmode.Stream
	iv     [aes.BlockSize]byte
	mac0   hash.Hash
	hdr    [8]byte
	sum    [sha256.Size]byte
}

// Handshake establishes a session pair. The host verifies the device
// against the authority, generates an ephemeral key (the RECEIVE_SECRET
// payload), and both sides derive upstream/downstream session keys from the
// ECDH shared secret. It returns the host endpoint and the device endpoint.
func Handshake(host io.Reader, dev *Device, auth *Authority) (*Session, *Session, error) {
	if host == nil {
		host = rand.Reader
	}
	registered, err := auth.Lookup(dev.ID())
	if err != nil {
		return nil, nil, err
	}
	devPub, err := ecdh.X25519().NewPublicKey(registered)
	if err != nil {
		return nil, nil, fmt.Errorf("seccomm: registered key invalid: %w", err)
	}
	eph, err := ecdh.X25519().GenerateKey(host)
	if err != nil {
		return nil, nil, fmt.Errorf("seccomm: ephemeral key: %w", err)
	}

	// Host side computes the shared secret against the *registered* key, so
	// an impostor device (whose private key does not match the registry)
	// derives a different secret and every subsequent MAC check fails.
	hostSecret, err := eph.ECDH(devPub)
	if err != nil {
		return nil, nil, fmt.Errorf("seccomm: host ECDH: %w", err)
	}
	devSecret, err := dev.priv.ECDH(eph.PublicKey())
	if err != nil {
		return nil, nil, fmt.Errorf("seccomm: device ECDH: %w", err)
	}

	hostSess, err := deriveSession(hostSecret, dev.ID(), true)
	if err != nil {
		return nil, nil, err
	}
	devSess, err := deriveSession(devSecret, dev.ID(), false)
	if err != nil {
		return nil, nil, err
	}
	return hostSess, devSess, nil
}

// deriveSession expands the shared secret into two AES keys and two MAC
// keys via HMAC-SHA256 with direction labels.
func deriveSession(secret []byte, id string, isHost bool) (*Session, error) {
	expand := func(label string) []byte {
		m := hmac.New(sha256.New, secret)
		m.Write([]byte(label))
		m.Write([]byte(id))
		return m.Sum(nil)
	}
	mk := func(label string) (cipherState, error) {
		keys := expand(label)
		block, err := aes.NewCipher(keys[:16])
		if err != nil {
			return cipherState{}, fmt.Errorf("seccomm: aes: %w", err)
		}
		return cipherState{block: block, mac0: hmac.New(sha256.New, keys[16:])}, nil
	}
	up, err := mk("upstream")
	if err != nil {
		return nil, err
	}
	down, err := mk("downstream")
	if err != nil {
		return nil, err
	}
	if isHost {
		return &Session{send: up, recv: down}, nil
	}
	return &Session{send: down, recv: up}, nil
}

// pad XORs data with the AES-CTR keystream for message counter ctr. The IV
// layout (counter in the high 8 bytes, zeros below) and the keystream are
// bit-identical to the stdlib CTR the package originally used.
func (cs *cipherState) pad(ctr uint64, data []byte) {
	binary.BigEndian.PutUint64(cs.iv[:8], ctr)
	cs.stream.XORKeyStream(cs.block, &cs.iv, data, data)
}

// mac returns the truncated frame MAC in cs's reusable output buffer —
// valid only until the next mac call on cs.
func (cs *cipherState) mac(ctr uint64, ct []byte) []byte {
	cs.mac0.Reset()
	binary.BigEndian.PutUint64(cs.hdr[:], ctr)
	cs.mac0.Write(cs.hdr[:])
	cs.mac0.Write(ct)
	return cs.mac0.Sum(cs.sum[:0])[:MACSize]
}

// Seal encrypts and authenticates a message for the peer, returning
// ciphertext || MAC. The per-direction counter advances; the peer's Open
// must be called in the same order (the DDR bus guarantees ordering).
// The result is a fresh allocation the caller owns; the hot path uses
// SealAppend.
func (s *Session) Seal(plaintext []byte) []byte {
	return s.SealAppend(nil, plaintext)
}

// SealAppend is Seal appending the sealed frame to dst, allocating only if
// dst lacks capacity. plaintext must not alias dst's spare capacity.
func (s *Session) SealAppend(dst, plaintext []byte) []byte {
	s.m.observeSeal()
	cs := &s.send
	start := len(dst)
	dst = append(dst, plaintext...)
	dst = append(dst, zeroMAC[:]...)
	ct := dst[start : len(dst)-MACSize]
	cs.pad(cs.counter, ct)
	copy(dst[len(dst)-MACSize:], cs.mac(cs.counter, ct))
	cs.counter++
	return dst
}

var zeroMAC [MACSize]byte

// Open authenticates and decrypts a message produced by the peer's Seal.
// A frame that fails at the expected counter is diagnosed against nearby
// counters (±counterWindow) so callers can distinguish tampering (ErrAuth)
// from reordering (ErrOutOfOrder) and replay/retransmission (ErrReplayed);
// diagnosis never advances state and never accepts the frame. The result is
// a fresh allocation the caller owns; the hot path uses OpenAppend.
func (s *Session) Open(msg []byte) ([]byte, error) {
	return s.OpenAppend(nil, msg)
}

// OpenAppend is Open appending the plaintext to dst, allocating only if dst
// lacks capacity. msg must not alias dst's spare capacity. On error dst is
// unchanged and the returned slice is nil.
func (s *Session) OpenAppend(dst, msg []byte) ([]byte, error) {
	out, err := s.openAppend(dst, msg)
	s.m.observeOpen(err)
	return out, err
}

func (s *Session) openAppend(dst, msg []byte) ([]byte, error) {
	cs := &s.recv
	if len(msg) < MACSize {
		return nil, ErrShortMessage
	}
	ct := msg[:len(msg)-MACSize]
	tag := msg[len(msg)-MACSize:]
	want := cs.mac(cs.counter, ct)
	if subtle.ConstantTimeCompare(tag, want) != 1 {
		return nil, cs.classify(ct, tag)
	}
	start := len(dst)
	dst = append(dst, ct...)
	cs.pad(cs.counter, dst[start:])
	cs.counter++
	return dst, nil
}

// classify diagnoses a frame that failed authentication at the expected
// counter by probing nearby counters. An attacker gains nothing from the
// probing: forging any of the probed MACs is as hard as forging the
// expected one, and the frame is rejected either way.
func (cs *cipherState) classify(ct, tag []byte) error {
	for j := uint64(1); j <= counterWindow; j++ {
		if subtle.ConstantTimeCompare(tag, cs.mac(cs.counter+j, ct)) == 1 {
			return &CounterError{Expected: cs.counter, Got: cs.counter + j, kind: ErrOutOfOrder}
		}
		if j <= cs.counter {
			if subtle.ConstantTimeCompare(tag, cs.mac(cs.counter-j, ct)) == 1 {
				return &CounterError{Expected: cs.counter, Got: cs.counter - j, kind: ErrReplayed}
			}
		}
	}
	return ErrAuth
}

// SendCounter exposes the next send counter (used by tests and by the
// simulator's deterministic-traffic assertions).
func (s *Session) SendCounter() uint64 { return s.send.counter }

// RecvCounter exposes the next expected receive counter.
func (s *Session) RecvCounter() uint64 { return s.recv.counter }

// RestoreCounters loads persisted send/receive counters onto the session
// (crash recovery: the durability checkpoint carries each link's logical
// message indices). SECURITY: this is only safe on a freshly handshaken
// session — the restart derives new ephemeral session keys, so no counter
// value can reuse a pad from the pre-crash keys. Counters may only move
// forward from the session's current position; rewinding (which on a
// long-lived session would reuse pads and reopen the replay window) is
// rejected.
func (s *Session) RestoreCounters(send, recv uint64) error {
	if send < s.send.counter || recv < s.recv.counter {
		return fmt.Errorf("seccomm: RestoreCounters(%d, %d) would rewind counters (%d, %d)",
			send, recv, s.send.counter, s.recv.counter)
	}
	s.send.counter = send
	s.recv.counter = recv
	return nil
}

// ResendFrom rewinds the send counter to ctr so an unacknowledged frame can
// be retransmitted. SECURITY: the caller must re-Seal the exact bytes it
// sealed at ctr the first time — sealing a different plaintext at a reused
// counter reuses the CTR pad and leaks the XOR of the two plaintexts. The
// counter can only move backwards (over frames the peer never accepted);
// skipping ahead is rejected.
func (s *Session) ResendFrom(ctr uint64) error {
	if ctr > s.send.counter {
		return fmt.Errorf("seccomm: ResendFrom(%d) would advance past send counter %d", ctr, s.send.counter)
	}
	s.send.counter = ctr
	return nil
}

// Resync realigns a session pair after the host abandons an exchange (retry
// budget exhausted with frames or responses lost in flight). It models the
// short authenticated control transaction a real host performs on the
// command bus before reusing the link. Receive counters only ever move
// FORWARD, to the peer's send counter: abandoned frames become permanently
// unacceptable and no counter can be consumed twice, so replay safety is
// preserved. Send counters are untouched — the next Seal uses a fresh
// counter and no pad is ever reused.
func Resync(a, b *Session) {
	a.m.observeResync()
	if b.m != a.m {
		b.m.observeResync()
	}
	if a.send.counter > b.recv.counter {
		b.recv.counter = a.send.counter
	}
	if b.send.counter > a.recv.counter {
		a.recv.counter = b.send.counter
	}
}
