package seccomm

import (
	"bytes"
	"testing"

	"sdimm/internal/raceflag"
)

// TestSealOpenAppendRoundTrip proves the append variants produce exactly the
// frames Seal/Open do and respect the dst contract (append, don't clobber).
func TestSealOpenAppendRoundTrip(t *testing.T) {
	host, dev := pair(t)
	pt := []byte("append-variant round trip payload")
	prefix := []byte("prefix-")
	frame := host.SealAppend(append([]byte(nil), prefix...), pt)
	if !bytes.HasPrefix(frame, prefix) {
		t.Fatalf("SealAppend clobbered dst prefix")
	}
	got, err := dev.OpenAppend(append([]byte(nil), prefix...), frame[len(prefix):])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, append(append([]byte(nil), prefix...), pt...)) {
		t.Fatalf("OpenAppend result %q", got)
	}
}

// TestSealAppendMatchesSeal proves byte-for-byte frame compatibility between
// the allocating and append forms at identical counters.
func TestSealAppendMatchesSeal(t *testing.T) {
	a, _ := pair(t)
	// Seal at counter n, rewind, re-seal the same bytes with SealAppend:
	// identical counters must give identical frames.
	pt := []byte("identical frame check")
	f1 := a.Seal(pt)
	if err := a.ResendFrom(a.SendCounter() - 1); err != nil {
		t.Fatal(err)
	}
	f2 := a.SealAppend(nil, pt)
	if !bytes.Equal(f1, f2) {
		t.Fatalf("SealAppend frame differs from Seal frame")
	}
}

// TestSealOpenZeroAlloc is the tentpole's seccomm gate: steady-state seal
// and open must not allocate when the caller supplies capacity.
func TestSealOpenZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc gate skipped under -race (instrumentation allocates)")
	}
	host, dev := pair(t)
	pt := make([]byte, 90)
	sealBuf := make([]byte, 0, len(pt)+MACSize)
	openBuf := make([]byte, 0, len(pt))

	// Warm up any lazy state (HMAC marshaling paths and the like).
	for i := 0; i < 4; i++ {
		f := host.SealAppend(sealBuf[:0], pt)
		if _, err := dev.OpenAppend(openBuf[:0], f); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(500, func() {
		f := host.SealAppend(sealBuf[:0], pt)
		out, err := dev.OpenAppend(openBuf[:0], f)
		if err != nil || len(out) != len(pt) {
			t.Fatalf("round trip: %v", err)
		}
	}); n != 0 {
		t.Fatalf("SealAppend+OpenAppend allocate %.1f allocs/op, want 0", n)
	}
}

// BenchmarkSealOpen reports the per-frame link-crypto cost.
func BenchmarkSealOpen(b *testing.B) {
	dev, err := NewDevice("sdimm-bench", nil)
	if err != nil {
		b.Fatal(err)
	}
	auth := NewAuthority()
	auth.Register(dev)
	host, devSess, err := Handshake(nil, dev, auth)
	if err != nil {
		b.Fatal(err)
	}
	pt := make([]byte, 90)
	sealBuf := make([]byte, 0, len(pt)+MACSize)
	openBuf := make([]byte, 0, len(pt))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := host.SealAppend(sealBuf[:0], pt)
		if _, err := devSess.OpenAppend(openBuf[:0], f); err != nil {
			b.Fatal(err)
		}
	}
}
