package seccomm

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func pair(t *testing.T) (*Session, *Session) {
	t.Helper()
	dev, err := NewDevice("sdimm-0", nil)
	if err != nil {
		t.Fatal(err)
	}
	auth := NewAuthority()
	auth.Register(dev)
	host, devSess, err := Handshake(nil, dev, auth)
	if err != nil {
		t.Fatal(err)
	}
	return host, devSess
}

func TestRoundTripBothDirections(t *testing.T) {
	host, dev := pair(t)
	up := []byte("access block 0xdeadbeef")
	got, err := dev.Open(host.Seal(up))
	if err != nil || !bytes.Equal(got, up) {
		t.Fatalf("upstream round trip: %v %q", err, got)
	}
	down := []byte("result payload")
	got, err = host.Open(dev.Seal(down))
	if err != nil || !bytes.Equal(got, down) {
		t.Fatalf("downstream round trip: %v %q", err, got)
	}
}

func TestCiphertextDiffersFromPlaintext(t *testing.T) {
	host, _ := pair(t)
	pt := bytes.Repeat([]byte{0xAA}, 64)
	ct := host.Seal(pt)
	if bytes.Equal(ct[:64], pt) {
		t.Fatal("ciphertext equals plaintext")
	}
}

func TestIdenticalPlaintextsEncryptDifferently(t *testing.T) {
	// Counter mode: the same block sent twice must produce different
	// ciphertexts (temporal-locality hiding requires this).
	host, dev := pair(t)
	pt := bytes.Repeat([]byte{7}, 64)
	c1 := host.Seal(pt)
	c2 := host.Seal(pt)
	if bytes.Equal(c1, c2) {
		t.Fatal("two seals of same plaintext identical")
	}
	for _, c := range [][]byte{c1, c2} {
		got, err := dev.Open(c)
		if err != nil || !bytes.Equal(got, pt) {
			t.Fatalf("open failed: %v", err)
		}
	}
}

func TestTamperDetected(t *testing.T) {
	host, dev := pair(t)
	ct := host.Seal([]byte("sensitive"))
	ct[0] ^= 1
	if _, err := dev.Open(ct); !errors.Is(err, ErrAuth) {
		t.Fatalf("tampered ciphertext accepted: %v", err)
	}
}

func TestMACTamperDetected(t *testing.T) {
	host, dev := pair(t)
	ct := host.Seal([]byte("sensitive"))
	ct[len(ct)-1] ^= 1
	if _, err := dev.Open(ct); !errors.Is(err, ErrAuth) {
		t.Fatalf("tampered MAC accepted: %v", err)
	}
}

func TestReplayDetected(t *testing.T) {
	host, dev := pair(t)
	ct := host.Seal([]byte("block A"))
	if _, err := dev.Open(ct); err != nil {
		t.Fatal(err)
	}
	// Replaying the same wire message must fail: the receiver's counter
	// has advanced.
	if _, err := dev.Open(ct); !errors.Is(err, ErrAuth) {
		t.Fatalf("replay accepted: %v", err)
	}
}

func TestReorderDetected(t *testing.T) {
	host, dev := pair(t)
	c1 := host.Seal([]byte("first"))
	c2 := host.Seal([]byte("second"))
	if _, err := dev.Open(c2); !errors.Is(err, ErrAuth) {
		t.Fatalf("out-of-order message accepted: %v", err)
	}
	_ = c1
}

func TestShortMessageRejected(t *testing.T) {
	_, dev := pair(t)
	if _, err := dev.Open([]byte{1, 2, 3}); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("short message: %v", err)
	}
}

func TestUnregisteredDeviceRejected(t *testing.T) {
	dev, err := NewDevice("rogue", nil)
	if err != nil {
		t.Fatal(err)
	}
	auth := NewAuthority()
	if _, _, err := Handshake(nil, dev, auth); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("unregistered device handshake: %v", err)
	}
}

func TestImpostorDeviceCannotCommunicate(t *testing.T) {
	// Authority holds the genuine key; an impostor with the same ID but a
	// different private key completes the handshake mechanically but cannot
	// produce messages the host accepts.
	genuine, _ := NewDevice("sdimm-0", nil)
	impostor, _ := NewDevice("sdimm-0", nil)
	auth := NewAuthority()
	auth.Register(genuine)
	host, imp, err := Handshake(nil, impostor, auth)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := host.Open(imp.Seal([]byte("hello"))); !errors.Is(err, ErrAuth) {
		t.Fatalf("impostor traffic accepted: %v", err)
	}
}

func TestSessionsIndependentPerDevice(t *testing.T) {
	auth := NewAuthority()
	d0, _ := NewDevice("sdimm-0", nil)
	d1, _ := NewDevice("sdimm-1", nil)
	auth.Register(d0)
	auth.Register(d1)
	h0, s0, err := Handshake(nil, d0, auth)
	if err != nil {
		t.Fatal(err)
	}
	h1, _, err := Handshake(nil, d1, auth)
	if err != nil {
		t.Fatal(err)
	}
	// A message sealed for device 0 must not open on device 0's session via
	// host 1 keys, nor cross-talk between sessions.
	ct := h0.Seal([]byte("for sdimm-0"))
	if pt, err := s0.Open(ct); err != nil || string(pt) != "for sdimm-0" {
		t.Fatalf("genuine delivery failed: %v", err)
	}
	ct = h1.Seal([]byte("for sdimm-1"))
	if _, err := s0.Open(ct); err == nil {
		t.Fatal("cross-session message accepted")
	}
}

func TestEmptyMessage(t *testing.T) {
	host, dev := pair(t)
	got, err := dev.Open(host.Seal(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty message: %v %v", err, got)
	}
}

func TestSendCounterAdvances(t *testing.T) {
	host, _ := pair(t)
	if host.SendCounter() != 0 {
		t.Fatal("fresh session counter nonzero")
	}
	host.Seal([]byte("x"))
	host.Seal([]byte("y"))
	if host.SendCounter() != 2 {
		t.Fatalf("counter = %d, want 2", host.SendCounter())
	}
}

// Property: any payload round-trips through a session pair.
func TestPropertyRoundTrip(t *testing.T) {
	host, dev := pair(t)
	f := func(payload []byte) bool {
		got, err := dev.Open(host.Seal(payload))
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
