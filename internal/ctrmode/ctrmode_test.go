package ctrmode

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"math/rand"
	"testing"
)

// TestMatchesStdlib proves Stream produces exactly the stdlib CTR keystream
// for every length crossing block boundaries and for IVs that exercise the
// carry out of each byte — in particular the carry from the low 8 bytes
// (the bucket write counter / link message counter) into the high 8.
func TestMatchesStdlib(t *testing.T) {
	b, err := aes.NewCipher(bytes.Repeat([]byte{0x5a}, 16))
	if err != nil {
		t.Fatal(err)
	}
	ivs := [][16]byte{
		{},
		{15: 0xff},                     // carry into byte 14 after one block
		{8: 0x00, 9: 0xff, 15: 0xff},   // multi-byte carry
		{0: 0x01, 7: 0xff, 15: 0xfe},   // high half populated
		{7: 0x12, 8: 0xff, 9: 0xff, 10: 0xff, 11: 0xff, 12: 0xff, 13: 0xff, 14: 0xff, 15: 0xff}, // 64-bit boundary carry
		{0: 0xff, 1: 0xff, 2: 0xff, 3: 0xff, 4: 0xff, 5: 0xff, 6: 0xff, 7: 0xff, 8: 0xff, 9: 0xff, 10: 0xff, 11: 0xff, 12: 0xff, 13: 0xff, 14: 0xff, 15: 0xff}, // full wraparound
	}
	r := rand.New(rand.NewSource(1))
	var s Stream
	for _, iv := range ivs {
		for n := 0; n <= 100; n++ {
			src := make([]byte, n)
			r.Read(src)
			want := make([]byte, n)
			cipher.NewCTR(b, iv[:]).XORKeyStream(want, src)
			got := make([]byte, n)
			ivCopy := iv
			s.XORKeyStream(b, &ivCopy, got, src)
			if !bytes.Equal(got, want) {
				t.Fatalf("iv %x len %d: stream diverges from stdlib CTR", iv, n)
			}
			if ivCopy != iv {
				t.Fatalf("iv %x len %d: XORKeyStream mutated the caller's IV", iv, n)
			}
		}
	}
}

// TestInPlace proves dst == src (the way every caller uses it) works.
func TestInPlace(t *testing.T) {
	b, _ := aes.NewCipher(make([]byte, 16))
	iv := [16]byte{15: 0xfe}
	src := []byte("in-place counter mode round trip payload")
	want := make([]byte, len(src))
	cipher.NewCTR(b, iv[:]).XORKeyStream(want, src)
	buf := append([]byte(nil), src...)
	var s Stream
	s.XORKeyStream(b, &iv, buf, buf)
	if !bytes.Equal(buf, want) {
		t.Fatalf("in-place result diverges from stdlib CTR")
	}
}

// TestZeroAlloc is the package's own alloc gate: the keystream must be free
// of per-call allocations, or every layer above it inherits them.
func TestZeroAlloc(t *testing.T) {
	b, _ := aes.NewCipher(make([]byte, 16))
	s := new(Stream)
	iv := [16]byte{7: 0x09}
	buf := make([]byte, 80)
	if n := testing.AllocsPerRun(200, func() {
		s.XORKeyStream(b, &iv, buf, buf)
	}); n != 0 {
		t.Fatalf("XORKeyStream allocates %.1f allocs/op, want 0", n)
	}
}
