// Package ctrmode provides an allocation-free AES-CTR keystream primitive.
//
// The stdlib path (cipher.NewCTR per message) allocates a stream object and
// an internal buffer on every call, which puts two heap allocations on every
// seal/open and every bucket read/write — the hottest loops in the system.
// Stream keeps the counter block and pad as reusable scratch so steady-state
// use allocates nothing.
//
// Output is bit-identical to crypto/cipher.NewCTR(b, iv): the full 16-byte
// IV is treated as one big-endian 128-bit counter and incremented once per
// block, including carries out of the low 64 bits. Both seccomm (IV =
// counter || zeros) and the bucket stores (IV = bucket || write counter)
// persist or transmit ciphertext produced this way, so bit compatibility is
// load-bearing, not cosmetic; ctrmode_test.go proves it against the stdlib.
package ctrmode

import "crypto/cipher"

// BlockSize is the only cipher block size supported (AES).
const BlockSize = 16

// Stream holds the reusable scratch for one user of the keystream. The zero
// value is ready to use. Not safe for concurrent use.
type Stream struct {
	ctr [BlockSize]byte
	pad [BlockSize]byte
}

// XORKeyStream XORs src into dst under the CTR keystream of b starting at
// iv. dst and src must have the same length and must either overlap exactly
// or not at all. iv is read, never written.
func (s *Stream) XORKeyStream(b cipher.Block, iv *[BlockSize]byte, dst, src []byte) {
	if b.BlockSize() != BlockSize {
		panic("ctrmode: cipher block size must be 16")
	}
	s.ctr = *iv
	for len(src) > 0 {
		b.Encrypt(s.pad[:], s.ctr[:])
		n := len(src)
		if n > BlockSize {
			n = BlockSize
		}
		for i := 0; i < n; i++ {
			dst[i] = src[i] ^ s.pad[i]
		}
		// Big-endian 128-bit increment, exactly as crypto/cipher's ctr.
		for i := BlockSize - 1; i >= 0; i-- {
			s.ctr[i]++
			if s.ctr[i] != 0 {
				break
			}
		}
		src = src[n:]
		dst = dst[n:]
	}
}
