//go:build race

// Package raceflag exposes whether the race detector is compiled in, so
// allocation-gate tests (testing.AllocsPerRun == 0) can skip themselves:
// race instrumentation adds its own allocations that are not ours to gate.
package raceflag

// Enabled reports whether this binary was built with -race.
const Enabled = true
