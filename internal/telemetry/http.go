package telemetry

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// Handler serves the registry as an expvar-style live endpoint:
// GET / returns the JSON snapshot; GET /?text=1 returns the sorted text
// rendering; a "prefix" query parameter filters metric names; GET /metrics
// returns the Prometheus text exposition (see WritePrometheus).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/metrics" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			r.WritePrometheus(w)
			return
		}
		s := r.Snapshot()
		q := req.URL.Query()
		if q.Get("text") != "" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if p := q.Get("prefix"); p != "" {
				s.WriteText(w, p)
			} else {
				s.WriteText(w)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(s.JSON())
	})
}

// HandlerMux serves the registry (snapshot at /, Prometheus at /metrics)
// alongside caller-supplied handlers at their own paths — the serving front
// end mounts its SLO snapshot and the obliviousness-witness verdict next to
// the metrics endpoint, so one scrape target carries the whole dashboard.
// Extra paths must not be "/" or "/metrics".
func HandlerMux(r *Registry, extra map[string]http.Handler) http.Handler {
	mux := http.NewServeMux()
	for path, h := range extra {
		if path == "/" || path == "/metrics" {
			continue // reserved for the registry views
		}
		mux.Handle(path, h)
	}
	mux.Handle("/", Handler(r))
	return mux
}

// Serve starts the live endpoint on addr (e.g. "localhost:0") in a
// background goroutine. It returns the bound address and a stop function.
func Serve(addr string, r *Registry) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(r)}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}

// StartLogger writes a text snapshot (optionally filtered by prefixes) to
// w every interval until the returned stop function is called.
func StartLogger(r *Registry, w io.Writer, interval time.Duration, prefixes ...string) func() {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				fmt.Fprintf(w, "-- telemetry %s --\n", now.Format(time.TimeOnly))
				r.Snapshot().WriteText(w, prefixes...)
			}
		}
	}()
	return func() { close(done) }
}
