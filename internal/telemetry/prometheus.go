package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Registry in the Prometheus text exposition format
// (version 0.0.4), so a cluster's live endpoint can be scraped directly.
// The registry's folded names ("fault.retries{sdimm=3}") are unfolded back
// into label sets, metric names are sanitized to the Prometheus charset,
// and families are emitted sorted, so the rendering of a quiesced registry
// is byte-for-byte deterministic (the golden test relies on this):
//
//   - Counter  -> counter
//   - Gauge    -> gauge
//   - Mean     -> summary (_sum / _count, no quantiles)
//   - Histogram-> histogram (cumulative le buckets from the full dump,
//                 +Inf bucket, _sum / _count)

// promSeries is one rendered sample line (everything after the TYPE header).
type promSeries struct {
	group  string // the metric's own label block (before any le label)
	labels string // rendered {...} label block, "" for none
	suffix string // family-name suffix (_sum, _count, _bucket)
	value  string
	order  int // tie-break so _sum/_count/bucket lines keep their order
}

// promFamily groups the series sharing one sanitized family name.
type promFamily struct {
	name   string
	kind   string // counter | gauge | summary | histogram
	series []promSeries
}

// sanitizeMetricName maps a registry base name onto the Prometheus metric
// charset [a-zA-Z_:][a-zA-Z0-9_:]*; the registry's dotted namespaces become
// underscore-separated ("cluster.accesses" -> "cluster_accesses").
func sanitizeMetricName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sanitizeLabelName maps a label key onto [a-zA-Z_][a-zA-Z0-9_]*.
func sanitizeLabelName(s string) string {
	n := sanitizeMetricName(s)
	return strings.ReplaceAll(n, ":", "_")
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// splitFolded undoes Name's label folding: "base{k=v,k2=v2}" becomes the
// base name and the rendered Prometheus label block. Registry names always
// come from Name, so the fold is unambiguous (sorted keys, no nesting).
func splitFolded(folded string) (base, labels string) {
	i := strings.IndexByte(folded, '{')
	if i < 0 || !strings.HasSuffix(folded, "}") {
		return folded, ""
	}
	base = folded[:i]
	var b strings.Builder
	b.WriteByte('{')
	for j, kv := range strings.Split(folded[i+1:len(folded)-1], ",") {
		k, v, _ := strings.Cut(kv, "=")
		if j > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeLabelName(k))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return base, b.String()
}

// mergeLabels appends extra k="v" pairs into an existing label block.
func mergeLabels(labels string, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format. Families are sorted by name and series within a family by label
// block, so the output for a quiescent registry is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]uint64, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v.Value()
	}
	type meanVal struct {
		sum float64
		n   uint64
	}
	means := make(map[string]meanVal, len(r.means))
	for k, v := range r.means {
		means[k] = meanVal{sum: v.Sum(), n: v.N()}
	}
	hists := make(map[string]HistogramDump, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v.Dump()
	}
	r.mu.Unlock()

	fams := make(map[string]*promFamily)
	family := func(base, kind string) *promFamily {
		name := sanitizeMetricName(base)
		f, ok := fams[name]
		if !ok {
			f = &promFamily{name: name, kind: kind}
			fams[name] = f
		}
		return f
	}

	for folded, v := range counters {
		base, labels := splitFolded(folded)
		family(base, "counter").series = append(family(base, "counter").series,
			promSeries{group: labels, labels: labels, value: strconv.FormatUint(v, 10)})
	}
	for folded, v := range gauges {
		base, labels := splitFolded(folded)
		family(base, "gauge").series = append(family(base, "gauge").series,
			promSeries{group: labels, labels: labels, value: strconv.FormatInt(v, 10)})
	}
	for folded, v := range means {
		base, labels := splitFolded(folded)
		f := family(base, "summary")
		f.series = append(f.series,
			promSeries{group: labels, labels: labels, suffix: "_sum", value: formatFloat(v.sum), order: 0},
			promSeries{group: labels, labels: labels, suffix: "_count", value: strconv.FormatUint(v.n, 10), order: 1})
	}
	for folded, d := range hists {
		base, labels := splitFolded(folded)
		f := family(base, "histogram")
		cum := uint64(0)
		for i, n := range d.Buckets {
			cum += n
			le := `le="` + strconv.FormatUint(uint64(i+1)*d.Width, 10) + `"`
			f.series = append(f.series, promSeries{
				group:  labels,
				labels: mergeLabels(labels, le),
				suffix: "_bucket",
				value:  strconv.FormatUint(cum, 10),
				order:  i,
			})
		}
		f.series = append(f.series,
			promSeries{group: labels, labels: mergeLabels(labels, `le="+Inf"`), suffix: "_bucket",
				value: strconv.FormatUint(d.N, 10), order: len(d.Buckets)},
			promSeries{group: labels, labels: labels, suffix: "_sum",
				value: strconv.FormatUint(d.Sum, 10), order: len(d.Buckets) + 1},
			promSeries{group: labels, labels: labels, suffix: "_count",
				value: strconv.FormatUint(d.N, 10), order: len(d.Buckets) + 2})
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		sort.SliceStable(f.series, func(i, j int) bool {
			a, b := f.series[i], f.series[j]
			if a.group != b.group {
				return a.group < b.group
			}
			return a.order < b.order
		})
		for _, s := range f.series {
			if _, err := fmt.Fprintf(w, "%s%s%s %s\n", f.name, s.suffix, s.labels, s.value); err != nil {
				return err
			}
		}
	}
	return nil
}
