package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("cluster.accesses")
	c2 := r.Counter("cluster.accesses")
	if c1 != c2 {
		t.Fatal("same name resolved to different counters")
	}
	c1.Add(3)
	c2.Inc()
	if got := r.Counter("cluster.accesses").Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	g := r.Gauge("queue.depth", "sdimm", "2")
	g.Set(7)
	g.Add(-3)
	if got := r.Gauge("queue.depth", "sdimm", "2").Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	h1 := r.Histogram("lat", 10, 100)
	h2 := r.Histogram("lat", 99, 5) // existing shape wins
	if h1 != h2 {
		t.Fatal("same name resolved to different histograms")
	}
	m := r.Mean("util")
	m.Add(1)
	m.Add(3)
	if got := r.Mean("util").Value(); got != 2 {
		t.Fatalf("mean = %v, want 2", got)
	}
}

func TestName(t *testing.T) {
	if got := Name("dram.reads"); got != "dram.reads" {
		t.Fatalf("Name no labels = %q", got)
	}
	// Labels sort by key regardless of argument order.
	a := Name("dram.reads", "rank", "0", "chan", "sdimm1")
	b := Name("dram.reads", "chan", "sdimm1", "rank", "0")
	if a != b || a != "dram.reads{chan=sdimm1,rank=0}" {
		t.Fatalf("Name = %q / %q", a, b)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Mean("z").Add(1)
	r.Histogram("h", 1, 4).Add(2)
	r.AddHistogram("h2", NewHistogram(1, 4))
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			h := r.Histogram("h", 8, 64)
			m := r.Mean("m")
			g := r.Gauge("g")
			for i := 0; i < per; i++ {
				c.Inc()
				h.Add(uint64(i % 700))
				m.Add(1)
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Histogram("h", 8, 64).N(); got != workers*per {
		t.Fatalf("histogram n = %d, want %d", got, workers*per)
	}
	if got := r.Mean("m").Sum(); got != workers*per {
		t.Fatalf("mean sum = %v, want %d", got, workers*per)
	}
	if got := r.Gauge("g").Value(); got != workers*per {
		t.Fatalf("gauge = %d, want %d", got, workers*per)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(10, 4)
	for v := uint64(1); v <= 30; v++ {
		h.Add(v)
	}
	if q := h.Quantile(0.5); q != 20 {
		t.Fatalf("p50 = %d, want 20", q)
	}
	h.Add(1000) // overflow bucket
	if q := h.Quantile(1); q != 1000 {
		t.Fatalf("p100 with overflow = %d, want observed max 1000", q)
	}
}

func TestSnapshotTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("cluster.reads").Add(5)
	r.Gauge("fault.health.state", "sdimm", "0").Set(2)
	r.Histogram("lat", 16, 8).Add(33)
	s := r.Snapshot()

	var b strings.Builder
	s.WriteText(&b)
	txt := b.String()
	for _, want := range []string{"cluster.reads", "fault.health.state{sdimm=0}", "lat"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("text snapshot missing %q:\n%s", want, txt)
		}
	}
	b.Reset()
	s.WriteText(&b, "cluster.")
	if strings.Contains(b.String(), "fault.health") {
		t.Fatalf("prefix filter leaked: %s", b.String())
	}

	var round Snapshot
	if err := json.Unmarshal(s.JSON(), &round); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if round.Counters["cluster.reads"] != 5 {
		t.Fatalf("JSON counters = %+v", round.Counters)
	}
	if round.Histograms["lat"].N != 1 {
		t.Fatalf("JSON histograms = %+v", round.Histograms)
	}
}

func TestHTTPEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("cluster.reads").Add(9)
	addr, stop, err := Serve("localhost:0", r)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer stop()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(get("/")), &s); err != nil {
		t.Fatalf("endpoint JSON: %v", err)
	}
	if s.Counters["cluster.reads"] != 9 {
		t.Fatalf("endpoint counters = %+v", s.Counters)
	}
	if txt := get("/?text=1"); !strings.Contains(txt, "cluster.reads") {
		t.Fatalf("endpoint text = %q", txt)
	}
}

func TestStartLogger(t *testing.T) {
	r := NewRegistry()
	r.Counter("cluster.reads").Inc()
	pr, pw := io.Pipe()
	stop := StartLogger(r, pw, 10*time.Millisecond, "cluster.")
	br := bufio.NewReader(pr)
	deadline := time.After(5 * time.Second)
	found := make(chan string, 1)
	go func() {
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				return
			}
			if strings.Contains(line, "cluster.reads") {
				found <- line
				return
			}
		}
	}()
	select {
	case <-found:
	case <-deadline:
		t.Fatal("logger produced no snapshot line")
	}
	stop()
	pr.Close()
	pw.Close()
}

// TestRegistryHotPathAllocs is the enforced form of the benchmark guard:
// metric updates must never allocate, so telemetry cannot appear in future
// performance work.
func TestRegistryHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot.counter")
	g := r.Gauge("hot.gauge")
	h := r.Histogram("hot.hist", 64, 1024)
	m := r.Mean("hot.mean")
	var i uint64
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		c.Inc()
		c.Add(2)
		g.Set(int64(i))
		g.Add(-1)
		h.Add(i * 37 % 100000)
		m.Add(float64(i))
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkRegistryHotPath proves counter/histogram updates are
// allocation-free and cheap.
func BenchmarkRegistryHotPath(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("hot.counter")
	h := r.Histogram("hot.hist", 64, 1024)
	g := r.Gauge("hot.gauge")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Add(uint64(i) % 65536)
		g.Set(int64(i))
	}
	if n := testing.AllocsPerRun(100, func() { c.Inc(); h.Add(1); g.Add(1) }); n != 0 {
		b.Fatalf("hot path allocates %.1f allocs/op, want 0", n)
	}
}

func ExampleName() {
	fmt.Println(Name("dram.row_hits", "chan", "sdimm0", "rank", "1"))
	// Output: dram.row_hits{chan=sdimm0,rank=1}
}
