// Package telemetry is the single metrics source of truth for SDIMM
// clusters and the event-driven simulator: a concurrency-safe registry of
// counters, gauges, means, and latency histograms (all allocation-free on
// the update path), a span-based access tracer exporting Chrome
// trace-event JSON (openable in Perfetto / chrome://tracing), a live
// expvar-style HTTP endpoint, and a periodic snapshot logger.
//
// Metric handles are resolved once, at construction time, by name —
// optionally with labels folded into the name via Name — and updated
// through atomic operations afterwards, so instrumentation never shows up
// in hot-path profiles. Every accessor is nil-receiver-safe: a component
// built without a registry gets unregistered orphan metrics and the
// instrumentation code stays unconditional.
package telemetry

import (
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically growing event count, safe for concurrent use.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { atomic.AddUint64(&c.n, d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { atomic.AddUint64(&c.n, 1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return atomic.LoadUint64(&c.n) }

// Gauge is an instantaneous signed level (queue depth, health state),
// safe for concurrent use.
type Gauge struct {
	v int64
}

// Set stores the current level.
func (g *Gauge) Set(v int64) { atomic.StoreInt64(&g.v, v) }

// Add moves the level by d (negative to decrease).
func (g *Gauge) Add(d int64) { atomic.AddInt64(&g.v, d) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return atomic.LoadInt64(&g.v) }

// meanLimbs sizes the Mean superaccumulator: every finite float64 is a
// 53-bit integer scaled by 2^e with e in [-1074, 970], so the exact sum
// spans at most 2098 bits; 34 limbs (2176 bits) add 78 bits of carry
// headroom — enough for far more than 2^64 maximal samples.
const meanLimbs = 34

// Mean accumulates float64 samples and reports their running mean, safe for
// concurrent use. The sum is kept in an exact fixed-point superaccumulator
// (a two's-complement integer in units of 2^-1074, the smallest subnormal),
// so accumulation is associative and commutative: any interleaving or merge
// order of the same samples yields bit-identical state. A plain floating
// sum would make merged telemetry depend on worker scheduling — exactly the
// nondeterminism the equivalence suites forbid. Updates are allocation-free.
type Mean struct {
	mu        sync.Mutex
	limbs     [meanLimbs]uint64 // exact two's-complement sum, unit 2^-1074
	nonFinite float64           // ±Inf/NaN samples fold here (absorbing anyway)
	hasNF     bool
	n         uint64
}

// Add records one sample.
func (m *Mean) Add(v float64) {
	m.mu.Lock()
	m.addLocked(v)
	m.n++
	m.mu.Unlock()
}

// addLocked folds one sample into the superaccumulator.
func (m *Mean) addLocked(v float64) {
	fb := math.Float64bits(v)
	exp := int(fb >> 52 & 0x7FF)
	mant := fb & (1<<52 - 1)
	switch exp {
	case 0x7FF: // ±Inf or NaN: exactness is meaningless, track separately
		m.nonFinite += v
		m.hasNF = true
		return
	case 0:
		if mant == 0 {
			return // ±0 contributes nothing
		}
		exp = 1 // subnormal: no implicit bit, same scale as exp 1
	default:
		mant |= 1 << 52
	}
	// The sample is mant * 2^(exp-1075); in accumulator units that is mant
	// shifted left by exp-1 bits.
	pos := uint(exp - 1)
	l, s := int(pos/64), pos%64
	lo, hi := mant<<s, uint64(0)
	if s > 0 {
		hi = mant >> (64 - s)
	}
	var limbs = &m.limbs
	if fb>>63 == 0 {
		c := uint64(0)
		limbs[l], c = bits.Add64(limbs[l], lo, 0)
		limbs[l+1], c = bits.Add64(limbs[l+1], hi, c)
		for i := l + 2; c != 0 && i < meanLimbs; i++ {
			limbs[i], c = bits.Add64(limbs[i], 0, c)
		}
	} else {
		b := uint64(0)
		limbs[l], b = bits.Sub64(limbs[l], lo, 0)
		limbs[l+1], b = bits.Sub64(limbs[l+1], hi, b)
		for i := l + 2; b != 0 && i < meanLimbs; i++ {
			limbs[i], b = bits.Sub64(limbs[i], 0, b)
		}
	}
}

// N returns the number of samples.
func (m *Mean) N() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n
}

// meanState is a Mean's complete transferable state (Registry.Merge moves
// these between registries so pooling stays exact).
type meanState struct {
	limbs     [meanLimbs]uint64
	nonFinite float64
	hasNF     bool
	n         uint64
}

// state snapshots the accumulator.
func (m *Mean) state() meanState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return meanState{limbs: m.limbs, nonFinite: m.nonFinite, hasNF: m.hasNF, n: m.n}
}

// mergeState pools another mean's samples into this one. Limb addition is
// exact integer addition, so merging is associative and commutative —
// registries merged in any order agree bitwise.
func (m *Mean) mergeState(s meanState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := uint64(0)
	for i := range m.limbs {
		m.limbs[i], c = bits.Add64(m.limbs[i], s.limbs[i], c)
	}
	if s.hasNF {
		m.nonFinite += s.nonFinite
		m.hasNF = true
	}
	m.n += s.n
}

// Sum returns the total of all samples (plus any non-finite contribution),
// a pure function of the accumulator state.
func (m *Mean) Sum() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	mag := m.limbs
	neg := mag[meanLimbs-1]>>63 == 1
	if neg { // two's-complement negate to get the magnitude
		c := uint64(1)
		for i := range mag {
			mag[i], c = bits.Add64(^mag[i], 0, c)
		}
	}
	// Convert most-significant limb down: each partial add is a pure
	// function of the limbs, so the rounded result is deterministic.
	sum := 0.0
	for i := meanLimbs - 1; i >= 0; i-- {
		if mag[i] != 0 {
			sum += math.Ldexp(float64(mag[i]), i*64-1074)
		}
	}
	if neg {
		sum = -sum
	}
	if m.hasNF {
		return m.nonFinite + sum
	}
	return sum
}

// Value returns the mean of the samples, or 0 with no samples.
func (m *Mean) Value() float64 {
	m.mu.Lock()
	n := m.n
	m.mu.Unlock()
	if n == 0 {
		return 0
	}
	return m.Sum() / float64(n)
}

// Histogram is a latency histogram with fixed-width buckets plus an
// overflow bucket, retaining enough information for mean and quantiles.
// Updates are atomic and allocation-free; a concurrent Quantile sees a
// near-point-in-time view.
type Histogram struct {
	width   uint64
	buckets []uint64
	over    uint64
	sum     uint64
	n       uint64
	max     uint64
}

// NewHistogram builds a histogram with nbuckets buckets of the given width.
func NewHistogram(width uint64, nbuckets int) *Histogram {
	if width == 0 || nbuckets <= 0 {
		panic("telemetry: invalid histogram shape")
	}
	return &Histogram{width: width, buckets: make([]uint64, nbuckets)}
}

// Add records one sample.
func (h *Histogram) Add(v uint64) {
	atomic.AddUint64(&h.sum, v)
	atomic.AddUint64(&h.n, 1)
	for {
		old := atomic.LoadUint64(&h.max)
		if v <= old || atomic.CompareAndSwapUint64(&h.max, old, v) {
			break
		}
	}
	i := v / h.width
	if i >= uint64(len(h.buckets)) {
		atomic.AddUint64(&h.over, 1)
		return
	}
	atomic.AddUint64(&h.buckets[i], 1)
}

// N returns the number of samples.
func (h *Histogram) N() uint64 { return atomic.LoadUint64(&h.n) }

// Sum returns the total of all samples.
func (h *Histogram) Sum() uint64 { return atomic.LoadUint64(&h.sum) }

// Mean returns the mean sample, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	n := h.N()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Max returns the largest sample seen.
func (h *Histogram) Max() uint64 { return atomic.LoadUint64(&h.max) }

// HistogramDump is the full bucket-level content of a histogram — unlike
// HistogramSnapshot it loses nothing, so two dumps are equal exactly when
// the histograms would answer every query identically. Equivalence tests
// compare dumps to prove bitwise-identical stats.
type HistogramDump struct {
	Width   uint64   `json:"width"`
	Buckets []uint64 `json:"buckets"`
	Over    uint64   `json:"over"`
	Sum     uint64   `json:"sum"`
	N       uint64   `json:"n"`
	Max     uint64   `json:"max"`
}

// Dump returns the histogram's complete state. Concurrent updates yield a
// near-point-in-time view; quiesce writers for an exact one.
func (h *Histogram) Dump() HistogramDump {
	d := HistogramDump{
		Width:   h.width,
		Buckets: make([]uint64, len(h.buckets)),
		Over:    atomic.LoadUint64(&h.over),
		Sum:     atomic.LoadUint64(&h.sum),
		N:       atomic.LoadUint64(&h.n),
		Max:     atomic.LoadUint64(&h.max),
	}
	for i := range h.buckets {
		d.Buckets[i] = atomic.LoadUint64(&h.buckets[i])
	}
	return d
}

// Merge folds another histogram's samples into this one, bucket by bucket.
// Both histograms must have the same shape (width and bucket count); Merge
// panics otherwise, because silently re-bucketing would corrupt quantiles.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	if h.width != o.width || len(h.buckets) != len(o.buckets) {
		panic("telemetry: merging histograms of different shapes")
	}
	atomic.AddUint64(&h.sum, atomic.LoadUint64(&o.sum))
	atomic.AddUint64(&h.n, atomic.LoadUint64(&o.n))
	atomic.AddUint64(&h.over, atomic.LoadUint64(&o.over))
	om := atomic.LoadUint64(&o.max)
	for {
		old := atomic.LoadUint64(&h.max)
		if om <= old || atomic.CompareAndSwapUint64(&h.max, old, om) {
			break
		}
	}
	for i := range h.buckets {
		atomic.AddUint64(&h.buckets[i], atomic.LoadUint64(&o.buckets[i]))
	}
}

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1), using
// bucket upper edges. With no samples it returns 0; samples landing in the
// overflow bucket report the observed max rather than the last bucket
// boundary.
func (h *Histogram) Quantile(q float64) uint64 {
	n := h.N()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		q = math.SmallestNonzeroFloat64
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(n)))
	var cum uint64
	for i := range h.buckets {
		cum += atomic.LoadUint64(&h.buckets[i])
		if cum >= target {
			return (uint64(i) + 1) * h.width
		}
	}
	return h.Max()
}

// Name folds label key/value pairs into a metric name:
// Name("dram.reads", "chan", "sdimm0") => "dram.reads{chan=sdimm0}".
// Labels are sorted by key so the same set always produces the same name.
func Name(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	if len(kv)%2 != 0 {
		panic("telemetry: Name needs key/value pairs")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteByte('=')
		b.WriteString(p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// Registry is a concurrency-safe named-metric store. Handles are resolved
// under a mutex (get-or-create); updates through the returned handles are
// lock-free. The zero value is not usable — call NewRegistry. All methods
// tolerate a nil receiver by handing out unregistered orphan metrics, so
// instrumented components work unchanged without telemetry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	means    map[string]*Mean
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		means:    make(map[string]*Mean),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name (with labels folded
// in), creating it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return &Counter{}
	}
	name = Name(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	name = Name(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Mean returns the running mean registered under name, creating it on
// first use.
func (r *Registry) Mean(name string, labels ...string) *Mean {
	if r == nil {
		return &Mean{}
	}
	name = Name(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.means[name]
	if !ok {
		m = &Mean{}
		r.means[name] = m
	}
	return m
}

// Histogram returns the histogram registered under name, creating it with
// the given shape on first use (the shape of an existing histogram wins).
func (r *Registry) Histogram(name string, width uint64, nbuckets int, labels ...string) *Histogram {
	if r == nil {
		return NewHistogram(width, nbuckets)
	}
	name = Name(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(width, nbuckets)
		r.hists[name] = h
	}
	return h
}

// Merge folds every metric of src into r: counters and histograms add,
// means pool their samples, and gauges take src's level (a gauge is an
// instantaneous reading, so the most recently merged source wins). Missing
// metrics are created; histograms adopt src's shape on first sight.
//
// Merging is order-independent for counters, means, and histograms: their
// accumulation is exact integer arithmetic (means use a fixed-point
// superaccumulator), so any merge order of the same sources produces a
// bit-identical aggregate. Gauges are the exception by design — an
// instantaneous reading has no meaningful pooled value. The parallel
// campaign runner relies on this: per-shard registries merged in any job
// order agree bitwise no matter how many workers ran the shards.
//
// A nil receiver or nil src is a no-op. src must be quiescent (no
// concurrent writers) for an exact merge.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	src.mu.Lock()
	counters := make(map[string]uint64, len(src.counters))
	for k, v := range src.counters {
		counters[k] = v.Value()
	}
	gauges := make(map[string]int64, len(src.gauges))
	for k, v := range src.gauges {
		gauges[k] = v.Value()
	}
	means := make(map[string]meanState, len(src.means))
	for k, v := range src.means {
		means[k] = v.state()
	}
	hists := make(map[string]*Histogram, len(src.hists))
	for k, v := range src.hists {
		hists[k] = v
	}
	src.mu.Unlock()

	for k, v := range counters {
		r.Counter(k).Add(v)
	}
	for k, v := range gauges {
		r.Gauge(k).Set(v)
	}
	for k, v := range means {
		r.Mean(k).mergeState(v)
	}
	for k, h := range hists {
		r.Histogram(k, h.width, len(h.buckets)).Merge(h)
	}
}

// AddHistogram registers an existing histogram under name, so a component
// that already owns one (e.g. the protocol backends' miss-latency
// histogram feeding the paper tables) can expose it without double
// bookkeeping. Registering over an existing name replaces the view.
func (r *Registry) AddHistogram(name string, h *Histogram, labels ...string) {
	if r == nil || h == nil {
		return
	}
	name = Name(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hists[name] = h
}
