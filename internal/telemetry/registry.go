// Package telemetry is the single metrics source of truth for SDIMM
// clusters and the event-driven simulator: a concurrency-safe registry of
// counters, gauges, means, and latency histograms (all allocation-free on
// the update path), a span-based access tracer exporting Chrome
// trace-event JSON (openable in Perfetto / chrome://tracing), a live
// expvar-style HTTP endpoint, and a periodic snapshot logger.
//
// Metric handles are resolved once, at construction time, by name —
// optionally with labels folded into the name via Name — and updated
// through atomic operations afterwards, so instrumentation never shows up
// in hot-path profiles. Every accessor is nil-receiver-safe: a component
// built without a registry gets unregistered orphan metrics and the
// instrumentation code stays unconditional.
package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically growing event count, safe for concurrent use.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { atomic.AddUint64(&c.n, d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { atomic.AddUint64(&c.n, 1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return atomic.LoadUint64(&c.n) }

// Gauge is an instantaneous signed level (queue depth, health state),
// safe for concurrent use.
type Gauge struct {
	v int64
}

// Set stores the current level.
func (g *Gauge) Set(v int64) { atomic.StoreInt64(&g.v, v) }

// Add moves the level by d (negative to decrease).
func (g *Gauge) Add(d int64) { atomic.AddInt64(&g.v, d) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return atomic.LoadInt64(&g.v) }

// Mean accumulates float64 samples and reports their running mean, safe
// for concurrent use (the sum is maintained with a CAS loop).
type Mean struct {
	sumBits uint64
	n       uint64
}

// Add records one sample.
func (m *Mean) Add(v float64) {
	for {
		old := atomic.LoadUint64(&m.sumBits)
		next := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&m.sumBits, old, next) {
			break
		}
	}
	atomic.AddUint64(&m.n, 1)
}

// N returns the number of samples.
func (m *Mean) N() uint64 { return atomic.LoadUint64(&m.n) }

// merge folds another mean's accumulated sum and count into this one.
func (m *Mean) merge(sum float64, n uint64) {
	for {
		old := atomic.LoadUint64(&m.sumBits)
		next := math.Float64bits(math.Float64frombits(old) + sum)
		if atomic.CompareAndSwapUint64(&m.sumBits, old, next) {
			break
		}
	}
	atomic.AddUint64(&m.n, n)
}

// Sum returns the total of all samples.
func (m *Mean) Sum() float64 { return math.Float64frombits(atomic.LoadUint64(&m.sumBits)) }

// Value returns the mean of the samples, or 0 with no samples.
func (m *Mean) Value() float64 {
	n := m.N()
	if n == 0 {
		return 0
	}
	return m.Sum() / float64(n)
}

// Histogram is a latency histogram with fixed-width buckets plus an
// overflow bucket, retaining enough information for mean and quantiles.
// Updates are atomic and allocation-free; a concurrent Quantile sees a
// near-point-in-time view.
type Histogram struct {
	width   uint64
	buckets []uint64
	over    uint64
	sum     uint64
	n       uint64
	max     uint64
}

// NewHistogram builds a histogram with nbuckets buckets of the given width.
func NewHistogram(width uint64, nbuckets int) *Histogram {
	if width == 0 || nbuckets <= 0 {
		panic("telemetry: invalid histogram shape")
	}
	return &Histogram{width: width, buckets: make([]uint64, nbuckets)}
}

// Add records one sample.
func (h *Histogram) Add(v uint64) {
	atomic.AddUint64(&h.sum, v)
	atomic.AddUint64(&h.n, 1)
	for {
		old := atomic.LoadUint64(&h.max)
		if v <= old || atomic.CompareAndSwapUint64(&h.max, old, v) {
			break
		}
	}
	i := v / h.width
	if i >= uint64(len(h.buckets)) {
		atomic.AddUint64(&h.over, 1)
		return
	}
	atomic.AddUint64(&h.buckets[i], 1)
}

// N returns the number of samples.
func (h *Histogram) N() uint64 { return atomic.LoadUint64(&h.n) }

// Sum returns the total of all samples.
func (h *Histogram) Sum() uint64 { return atomic.LoadUint64(&h.sum) }

// Mean returns the mean sample, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	n := h.N()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Max returns the largest sample seen.
func (h *Histogram) Max() uint64 { return atomic.LoadUint64(&h.max) }

// HistogramDump is the full bucket-level content of a histogram — unlike
// HistogramSnapshot it loses nothing, so two dumps are equal exactly when
// the histograms would answer every query identically. Equivalence tests
// compare dumps to prove bitwise-identical stats.
type HistogramDump struct {
	Width   uint64   `json:"width"`
	Buckets []uint64 `json:"buckets"`
	Over    uint64   `json:"over"`
	Sum     uint64   `json:"sum"`
	N       uint64   `json:"n"`
	Max     uint64   `json:"max"`
}

// Dump returns the histogram's complete state. Concurrent updates yield a
// near-point-in-time view; quiesce writers for an exact one.
func (h *Histogram) Dump() HistogramDump {
	d := HistogramDump{
		Width:   h.width,
		Buckets: make([]uint64, len(h.buckets)),
		Over:    atomic.LoadUint64(&h.over),
		Sum:     atomic.LoadUint64(&h.sum),
		N:       atomic.LoadUint64(&h.n),
		Max:     atomic.LoadUint64(&h.max),
	}
	for i := range h.buckets {
		d.Buckets[i] = atomic.LoadUint64(&h.buckets[i])
	}
	return d
}

// Merge folds another histogram's samples into this one, bucket by bucket.
// Both histograms must have the same shape (width and bucket count); Merge
// panics otherwise, because silently re-bucketing would corrupt quantiles.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	if h.width != o.width || len(h.buckets) != len(o.buckets) {
		panic("telemetry: merging histograms of different shapes")
	}
	atomic.AddUint64(&h.sum, atomic.LoadUint64(&o.sum))
	atomic.AddUint64(&h.n, atomic.LoadUint64(&o.n))
	atomic.AddUint64(&h.over, atomic.LoadUint64(&o.over))
	om := atomic.LoadUint64(&o.max)
	for {
		old := atomic.LoadUint64(&h.max)
		if om <= old || atomic.CompareAndSwapUint64(&h.max, old, om) {
			break
		}
	}
	for i := range h.buckets {
		atomic.AddUint64(&h.buckets[i], atomic.LoadUint64(&o.buckets[i]))
	}
}

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1), using
// bucket upper edges. With no samples it returns 0; samples landing in the
// overflow bucket report the observed max rather than the last bucket
// boundary.
func (h *Histogram) Quantile(q float64) uint64 {
	n := h.N()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		q = math.SmallestNonzeroFloat64
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(n)))
	var cum uint64
	for i := range h.buckets {
		cum += atomic.LoadUint64(&h.buckets[i])
		if cum >= target {
			return (uint64(i) + 1) * h.width
		}
	}
	return h.Max()
}

// Name folds label key/value pairs into a metric name:
// Name("dram.reads", "chan", "sdimm0") => "dram.reads{chan=sdimm0}".
// Labels are sorted by key so the same set always produces the same name.
func Name(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	if len(kv)%2 != 0 {
		panic("telemetry: Name needs key/value pairs")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteByte('=')
		b.WriteString(p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// Registry is a concurrency-safe named-metric store. Handles are resolved
// under a mutex (get-or-create); updates through the returned handles are
// lock-free. The zero value is not usable — call NewRegistry. All methods
// tolerate a nil receiver by handing out unregistered orphan metrics, so
// instrumented components work unchanged without telemetry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	means    map[string]*Mean
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		means:    make(map[string]*Mean),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name (with labels folded
// in), creating it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return &Counter{}
	}
	name = Name(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	name = Name(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Mean returns the running mean registered under name, creating it on
// first use.
func (r *Registry) Mean(name string, labels ...string) *Mean {
	if r == nil {
		return &Mean{}
	}
	name = Name(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.means[name]
	if !ok {
		m = &Mean{}
		r.means[name] = m
	}
	return m
}

// Histogram returns the histogram registered under name, creating it with
// the given shape on first use (the shape of an existing histogram wins).
func (r *Registry) Histogram(name string, width uint64, nbuckets int, labels ...string) *Histogram {
	if r == nil {
		return NewHistogram(width, nbuckets)
	}
	name = Name(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(width, nbuckets)
		r.hists[name] = h
	}
	return h
}

// Merge folds every metric of src into r: counters and histograms add,
// means pool their samples, and gauges take src's level (a gauge is an
// instantaneous reading, so the most recently merged source wins). Missing
// metrics are created; histograms adopt src's shape on first sight.
//
// Merging registries in a fixed order is deterministic: each name's result
// depends only on the sequence of sources that carried it, never on map
// iteration order within one source. The parallel campaign runner relies on
// this — per-shard registries merged in job order produce a bit-identical
// aggregate no matter how many workers ran the shards.
//
// A nil receiver or nil src is a no-op. src must be quiescent (no
// concurrent writers) for an exact merge.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	src.mu.Lock()
	counters := make(map[string]uint64, len(src.counters))
	for k, v := range src.counters {
		counters[k] = v.Value()
	}
	gauges := make(map[string]int64, len(src.gauges))
	for k, v := range src.gauges {
		gauges[k] = v.Value()
	}
	type meanState struct {
		sum float64
		n   uint64
	}
	means := make(map[string]meanState, len(src.means))
	for k, v := range src.means {
		means[k] = meanState{v.Sum(), v.N()}
	}
	hists := make(map[string]*Histogram, len(src.hists))
	for k, v := range src.hists {
		hists[k] = v
	}
	src.mu.Unlock()

	for k, v := range counters {
		r.Counter(k).Add(v)
	}
	for k, v := range gauges {
		r.Gauge(k).Set(v)
	}
	for k, v := range means {
		r.Mean(k).merge(v.sum, v.n)
	}
	for k, h := range hists {
		r.Histogram(k, h.width, len(h.buckets)).Merge(h)
	}
}

// AddHistogram registers an existing histogram under name, so a component
// that already owns one (e.g. the protocol backends' miss-latency
// histogram feeding the paper tables) can expose it without double
// bookkeeping. Registering over an existing name replaces the view.
func (r *Registry) AddHistogram(name string, h *Histogram, labels ...string) {
	if r == nil || h == nil {
		return
	}
	name = Name(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hists[name] = h
}
