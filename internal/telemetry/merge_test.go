package telemetry

import (
	"reflect"
	"testing"
)

func TestHistogramMergeAndDump(t *testing.T) {
	a := NewHistogram(10, 4)
	b := NewHistogram(10, 4)
	for _, v := range []uint64{1, 11, 39, 100} {
		a.Add(v)
	}
	for _, v := range []uint64{5, 25, 200} {
		b.Add(v)
	}
	a.Merge(b)
	want := NewHistogram(10, 4)
	for _, v := range []uint64{1, 11, 39, 100, 5, 25, 200} {
		want.Add(v)
	}
	if got, w := a.Dump(), want.Dump(); !reflect.DeepEqual(got, w) {
		t.Fatalf("merged dump %+v, want %+v", got, w)
	}
	if a.N() != 7 || a.Max() != 200 {
		t.Fatalf("n=%d max=%d after merge", a.N(), a.Max())
	}
}

func TestHistogramMergeShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched shapes did not panic")
		}
	}()
	NewHistogram(10, 4).Merge(NewHistogram(20, 4))
}

func TestRegistryMerge(t *testing.T) {
	dst := NewRegistry()
	dst.Counter("c").Add(3)
	dst.Gauge("g").Set(1)
	dst.Mean("m").Add(2)
	dst.Histogram("h", 10, 4).Add(15)

	src := NewRegistry()
	src.Counter("c").Add(4)
	src.Counter("only-src").Inc()
	src.Gauge("g").Set(9)
	src.Mean("m").Add(4)
	src.Histogram("h", 10, 4).Add(25)

	dst.Merge(src)

	if v := dst.Counter("c").Value(); v != 7 {
		t.Errorf("counter c = %d, want 7", v)
	}
	if v := dst.Counter("only-src").Value(); v != 1 {
		t.Errorf("counter only-src = %d, want 1", v)
	}
	if v := dst.Gauge("g").Value(); v != 9 {
		t.Errorf("gauge g = %d, want 9 (src wins)", v)
	}
	m := dst.Mean("m")
	if m.N() != 2 || m.Value() != 3 {
		t.Errorf("mean m: n=%d value=%v, want 2 samples mean 3", m.N(), m.Value())
	}
	h := dst.Histogram("h", 10, 4)
	if h.N() != 2 || h.Sum() != 40 {
		t.Errorf("hist h: n=%d sum=%d", h.N(), h.Sum())
	}

	// Merging nil or into nil must be a safe no-op.
	dst.Merge(nil)
	(*Registry)(nil).Merge(src)
}

// TestRegistryMergeDeterministic proves the property the parallel campaign
// runner depends on: merging the same per-shard registries in the same
// order yields bit-identical snapshots, regardless of how the shards were
// populated concurrently.
func TestRegistryMergeDeterministic(t *testing.T) {
	build := func() []*Registry {
		var shards []*Registry
		for i := 0; i < 5; i++ {
			r := NewRegistry()
			r.Counter("c").Add(uint64(i * 3))
			r.Gauge("last").Set(int64(i))
			r.Mean("m").Add(float64(i) * 0.1)
			r.Histogram("h", 5, 8).Add(uint64(i * 7))
			shards = append(shards, r)
		}
		return shards
	}
	agg := func(shards []*Registry) Snapshot {
		a := NewRegistry()
		for _, s := range shards {
			a.Merge(s)
		}
		return a.Snapshot()
	}
	s1 := agg(build())
	s2 := agg(build())
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("merge not deterministic:\n%v\nvs\n%v", s1, s2)
	}
	if s1.Gauges["last"] != 4 {
		t.Fatalf("gauge merge order broken: %d", s1.Gauges["last"])
	}
}
