package telemetry

import (
	"math"
	"reflect"
	"testing"
)

func TestHistogramMergeAndDump(t *testing.T) {
	a := NewHistogram(10, 4)
	b := NewHistogram(10, 4)
	for _, v := range []uint64{1, 11, 39, 100} {
		a.Add(v)
	}
	for _, v := range []uint64{5, 25, 200} {
		b.Add(v)
	}
	a.Merge(b)
	want := NewHistogram(10, 4)
	for _, v := range []uint64{1, 11, 39, 100, 5, 25, 200} {
		want.Add(v)
	}
	if got, w := a.Dump(), want.Dump(); !reflect.DeepEqual(got, w) {
		t.Fatalf("merged dump %+v, want %+v", got, w)
	}
	if a.N() != 7 || a.Max() != 200 {
		t.Fatalf("n=%d max=%d after merge", a.N(), a.Max())
	}
}

func TestHistogramMergeShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched shapes did not panic")
		}
	}()
	NewHistogram(10, 4).Merge(NewHistogram(20, 4))
}

func TestRegistryMerge(t *testing.T) {
	dst := NewRegistry()
	dst.Counter("c").Add(3)
	dst.Gauge("g").Set(1)
	dst.Mean("m").Add(2)
	dst.Histogram("h", 10, 4).Add(15)

	src := NewRegistry()
	src.Counter("c").Add(4)
	src.Counter("only-src").Inc()
	src.Gauge("g").Set(9)
	src.Mean("m").Add(4)
	src.Histogram("h", 10, 4).Add(25)

	dst.Merge(src)

	if v := dst.Counter("c").Value(); v != 7 {
		t.Errorf("counter c = %d, want 7", v)
	}
	if v := dst.Counter("only-src").Value(); v != 1 {
		t.Errorf("counter only-src = %d, want 1", v)
	}
	if v := dst.Gauge("g").Value(); v != 9 {
		t.Errorf("gauge g = %d, want 9 (src wins)", v)
	}
	m := dst.Mean("m")
	if m.N() != 2 || m.Value() != 3 {
		t.Errorf("mean m: n=%d value=%v, want 2 samples mean 3", m.N(), m.Value())
	}
	h := dst.Histogram("h", 10, 4)
	if h.N() != 2 || h.Sum() != 40 {
		t.Errorf("hist h: n=%d sum=%d", h.N(), h.Sum())
	}

	// Merging nil or into nil must be a safe no-op.
	dst.Merge(nil)
	(*Registry)(nil).Merge(src)
}

// TestRegistryMergeDeterministic proves the property the parallel campaign
// runner depends on: merging the same per-shard registries in the same
// order yields bit-identical snapshots, regardless of how the shards were
// populated concurrently.
func TestRegistryMergeDeterministic(t *testing.T) {
	build := func() []*Registry {
		var shards []*Registry
		for i := 0; i < 5; i++ {
			r := NewRegistry()
			r.Counter("c").Add(uint64(i * 3))
			r.Gauge("last").Set(int64(i))
			r.Mean("m").Add(float64(i) * 0.1)
			r.Histogram("h", 5, 8).Add(uint64(i * 7))
			shards = append(shards, r)
		}
		return shards
	}
	agg := func(shards []*Registry) Snapshot {
		a := NewRegistry()
		for _, s := range shards {
			a.Merge(s)
		}
		return a.Snapshot()
	}
	s1 := agg(build())
	s2 := agg(build())
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("merge not deterministic:\n%v\nvs\n%v", s1, s2)
	}
	if s1.Gauges["last"] != 4 {
		t.Fatalf("gauge merge order broken: %d", s1.Gauges["last"])
	}
}

// TestMeanExactAccumulation proves the superaccumulator is exact over
// samples a plain float sum destroys: adding 1e17, 1.0, -1e17 in any order
// yields exactly 1 (the naive left-to-right float sum yields 0 because 1.0
// vanishes into 1e17's rounding error).
func TestMeanExactAccumulation(t *testing.T) {
	orders := [][]float64{
		{1e17, 1.0, -1e17},
		{1e17, -1e17, 1.0},
		{1.0, 1e17, -1e17},
	}
	for _, vals := range orders {
		var m Mean
		for _, v := range vals {
			m.Add(v)
		}
		if got := m.Sum(); got != 1.0 {
			t.Errorf("sum of %v = %v, want exactly 1", vals, got)
		}
	}
	// Subnormals, sign cancellation, and fractional values stay exact too.
	var m Mean
	tiny := math.SmallestNonzeroFloat64
	for _, v := range []float64{tiny, 0.5, -tiny, 0.25, -0.75} {
		m.Add(v)
	}
	if got := m.Sum(); got != 0 {
		t.Errorf("cancelled sum = %v, want exactly 0", got)
	}
	// A negative total must round-trip through the two's-complement state.
	var neg Mean
	neg.Add(1.5)
	neg.Add(-4.0)
	if got := neg.Sum(); got != -2.5 {
		t.Errorf("negative sum = %v, want -2.5", got)
	}
}

// TestRegistryMergeOrderIndependent is the regression test for the float
// accumulation-order bug: merging the same shard registries in different
// orders must produce bitwise-identical means and histograms. The shard
// means deliberately carry catastrophically-cancelling magnitudes so a
// float-ordered accumulator would disagree between orders.
func TestRegistryMergeOrderIndependent(t *testing.T) {
	build := func() []*Registry {
		samples := [][]float64{
			{1e17, 3.25},
			{1.0, -2.5e16},
			{-1e17, 0.125},
			{-7.5e16, 1e-300},
		}
		var shards []*Registry
		for i, vs := range samples {
			r := NewRegistry()
			for _, v := range vs {
				r.Mean("m").Add(v)
			}
			r.Counter("c").Add(uint64(i + 1))
			r.Histogram("h", 5, 8).Add(uint64(i * 3))
			shards = append(shards, r)
		}
		return shards
	}
	agg := func(order []int) Snapshot {
		shards := build()
		a := NewRegistry()
		for _, i := range order {
			a.Merge(shards[i])
		}
		return a.Snapshot()
	}
	base := agg([]int{0, 1, 2, 3})
	for _, order := range [][]int{{3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}} {
		got := agg(order)
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("merge order %v disagrees with ascending order:\n%v\nvs\n%v", order, got, base)
		}
	}
	// Associativity: merging shards pairwise through intermediates must
	// match the flat fold bitwise.
	shards := build()
	left, right := NewRegistry(), NewRegistry()
	left.Merge(shards[0])
	left.Merge(shards[1])
	right.Merge(shards[2])
	right.Merge(shards[3])
	tree := NewRegistry()
	tree.Merge(left)
	tree.Merge(right)
	if got := tree.Snapshot(); !reflect.DeepEqual(got, base) {
		t.Fatalf("pairwise merge disagrees with flat merge:\n%v\nvs\n%v", got, base)
	}
}
