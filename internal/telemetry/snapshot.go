package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// HistogramSnapshot is a point-in-time summary of one histogram.
type HistogramSnapshot struct {
	N    uint64  `json:"n"`
	Mean float64 `json:"mean"`
	Max  uint64  `json:"max"`
	P50  uint64  `json:"p50"`
	P95  uint64  `json:"p95"`
	P99  uint64  `json:"p99"`
}

// Snapshot is a point-in-time copy of every registered metric, suitable
// for JSON serialization, text rendering, and test assertions.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Means      map[string]float64           `json:"means"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the current value of every metric. A nil registry
// yields an empty (but fully allocated) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Means:      make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	means := make(map[string]*Mean, len(r.means))
	for k, v := range r.means {
		means[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, m := range means {
		s.Means[k] = m.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = HistogramSnapshot{
			N:    h.N(),
			Mean: h.Mean(),
			Max:  h.Max(),
			P50:  h.Quantile(0.50),
			P95:  h.Quantile(0.95),
			P99:  h.Quantile(0.99),
		}
	}
	return s
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil { // maps of scalars cannot fail to marshal
		panic(err)
	}
	return b
}

// WriteText renders the snapshot as sorted "name value" lines, grouping
// metric kinds. An optional prefix filter keeps only names starting with
// one of the given prefixes (no prefixes = everything).
func (s Snapshot) WriteText(w io.Writer, prefixes ...string) {
	keep := func(name string) bool {
		if len(prefixes) == 0 {
			return true
		}
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	var names []string
	for k := range s.Counters {
		if keep(k) {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(w, "%-52s %d\n", k, s.Counters[k])
	}
	names = names[:0]
	for k := range s.Gauges {
		if keep(k) {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(w, "%-52s %d\n", k, s.Gauges[k])
	}
	names = names[:0]
	for k := range s.Means {
		if keep(k) {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(w, "%-52s %.4g\n", k, s.Means[k])
	}
	names = names[:0]
	for k := range s.Histograms {
		if keep(k) {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Histograms[k]
		fmt.Fprintf(w, "%-52s n=%d mean=%.1f p50=%d p95=%d p99=%d max=%d\n",
			k, h.N, h.Mean, h.P50, h.P95, h.P99, h.Max)
	}
}

// String renders the full snapshot as text.
func (s Snapshot) String() string {
	var b strings.Builder
	s.WriteText(&b)
	return b.String()
}
