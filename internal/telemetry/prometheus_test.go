package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exposition byte-for-byte: families
// sorted by sanitized name, label folding undone into quoted Prometheus
// labels, means as summaries, histograms as cumulative le buckets.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("cluster.accesses").Add(42)
	r.Counter("fault.retries", "sdimm", "3").Add(7)
	r.Counter("fault.retries", "sdimm", "0").Inc()
	r.Counter("witness.violations", "kind", "shape") // registered, zero
	r.Gauge("fault.health.state", "sdimm", "0").Set(2)
	m := r.Mean("stash.occupancy")
	m.Add(1.5)
	m.Add(2.5)
	h := r.Histogram("access.latency", 10, 3)
	h.Add(5)
	h.Add(15)
	h.Add(100)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# TYPE access_latency histogram
access_latency_bucket{le="10"} 1
access_latency_bucket{le="20"} 2
access_latency_bucket{le="30"} 2
access_latency_bucket{le="+Inf"} 3
access_latency_sum 120
access_latency_count 3
# TYPE cluster_accesses counter
cluster_accesses 42
# TYPE fault_health_state gauge
fault_health_state{sdimm="0"} 2
# TYPE fault_retries counter
fault_retries{sdimm="0"} 1
fault_retries{sdimm="3"} 7
# TYPE stash_occupancy summary
stash_occupancy_sum 4
stash_occupancy_count 2
# TYPE witness_violations counter
witness_violations{kind="shape"} 0
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusEscaping checks label-value escaping and name
// sanitization survive hostile inputs.
func TestWritePrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird-name.1", "path", `a\b"c`).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := "# TYPE weird_name_1 counter\n" +
		"weird_name_1{path=\"a\\\\b\\\"c\"} 1\n"
	if got := b.String(); got != want {
		t.Errorf("got %q, want %q", b.String(), want)
	}
}

// TestHandlerMetricsPath wires the exposition into the live endpoint.
func TestHandlerMetricsPath(t *testing.T) {
	r := NewRegistry()
	r.Counter("cluster.accesses").Add(3)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "cluster_accesses 3") {
		t.Errorf("missing counter in body:\n%s", body)
	}

	// The JSON snapshot endpoint must be unaffected.
	resp2, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatalf("GET /: %v", err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("root content type %q, want application/json", ct)
	}
}

// TestWritePrometheusNil checks the nil receiver stays a no-op.
func TestWritePrometheusNil(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil registry: err=%v len=%d", err, b.Len())
	}
}
