package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one Chrome trace-event (the JSON array format consumed by
// Perfetto and chrome://tracing). Timestamps are in the tracer's clock
// units, emitted in the "ts"/"dur" microsecond fields: the event-driven
// simulator maps one CPU cycle to one displayed microsecond.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Tracer records spans and instants and exports them as Chrome trace-event
// JSON. All methods are safe on a nil receiver (no-ops), so components can
// be instrumented unconditionally; non-nil tracers are safe for concurrent
// use. Lanes stand in for thread IDs: one access holds a lane for its
// lifetime so its spans nest properly in the viewer.
type Tracer struct {
	mu     sync.Mutex
	clock  func() uint64
	events []Event
	lanes  []bool // lane allocation bitmap; index = tid
}

// NewTracer builds a tracer over the given clock (monotonic, in the units
// to display as microseconds). A nil clock uses wall time in microseconds.
func NewTracer(clock func() uint64) *Tracer {
	if clock == nil {
		start := time.Now()
		clock = func() uint64 { return uint64(time.Since(start).Microseconds()) }
	}
	return &Tracer{clock: clock}
}

// Now returns the tracer's current clock reading (0 on a nil tracer).
func (t *Tracer) Now() uint64 {
	if t == nil {
		return 0
	}
	return t.clock()
}

// Lane allocates the lowest free lane (trace tid). Release it with
// FreeLane when the access completes.
func (t *Tracer) Lane() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, used := range t.lanes {
		if !used {
			t.lanes[i] = true
			return i
		}
	}
	t.lanes = append(t.lanes, true)
	return len(t.lanes) - 1
}

// FreeLane returns a lane to the pool.
func (t *Tracer) FreeLane(lane int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if lane >= 0 && lane < len(t.lanes) {
		t.lanes[lane] = false
	}
}

// Complete records a finished span [start, end] on the given lane.
func (t *Tracer) Complete(lane int, name, cat string, start, end uint64) {
	t.CompleteArgs(lane, name, cat, start, end, nil)
}

// CompleteArgs is Complete with span arguments attached.
func (t *Tracer) CompleteArgs(lane int, name, cat string, start, end uint64, args map[string]any) {
	if t == nil {
		return
	}
	if end < start {
		end = start
	}
	t.mu.Lock()
	t.events = append(t.events, Event{
		Name: name, Cat: cat, Ph: "X", TS: start, Dur: end - start,
		PID: 1, TID: lane, Args: args,
	})
	t.mu.Unlock()
}

// Instant records a zero-duration marker (health transition, fault
// injection, reconstruction) on the given lane.
func (t *Tracer) Instant(lane int, name, cat string, args map[string]any) {
	if t == nil {
		return
	}
	now := t.clock()
	t.mu.Lock()
	t.events = append(t.events, Event{
		Name: name, Cat: cat, Ph: "i", TS: now, PID: 1, TID: lane, Args: args,
	})
	t.mu.Unlock()
}

// Span is an open interval started by Begin; End closes it. The zero Span
// (from a nil tracer) is a no-op.
type Span struct {
	t     *Tracer
	lane  int
	name  string
	cat   string
	start uint64
}

// Begin opens a span on the given lane at the current clock.
func (t *Tracer) Begin(lane int, name, cat string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, lane: lane, name: name, cat: cat, start: t.clock()}
}

// End closes the span at the current clock.
func (s Span) End() { s.EndArgs(nil) }

// EndArgs closes the span with arguments attached.
func (s Span) EndArgs(args map[string]any) {
	if s.t == nil {
		return
	}
	s.t.CompleteArgs(s.lane, s.name, s.cat, s.start, s.t.clock(), args)
}

// Events returns a copy of the recorded events (tests and exporters).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Len reports the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// traceFile is the Chrome trace-event JSON object format.
type traceFile struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit,omitempty"`
	Comment         string  `json:"otherData,omitempty"`
}

// WriteJSON exports the recorded events as a Chrome trace-event JSON
// object ({"traceEvents": [...]}) that Perfetto and chrome://tracing open
// directly.
func (t *Tracer) WriteJSON(w io.Writer) error {
	tf := traceFile{TraceEvents: t.Events(), DisplayTimeUnit: "ms"}
	if tf.TraceEvents == nil {
		tf.TraceEvents = []Event{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// validPhases are the trace-event phase codes this exporter emits.
var validPhases = map[string]bool{"X": true, "i": true, "I": true, "B": true, "E": true, "C": true, "M": true}

// ValidateTrace schema-checks Chrome trace-event JSON produced by
// WriteJSON (or compatible tools): a top-level object with a traceEvents
// array whose entries carry a name, a known phase, and a non-negative
// timestamp. It returns the number of events.
func ValidateTrace(data []byte) (int, error) {
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		return 0, fmt.Errorf("telemetry: trace is not a JSON object: %w", err)
	}
	if tf.TraceEvents == nil {
		return 0, fmt.Errorf("telemetry: trace has no traceEvents array")
	}
	for i, ev := range tf.TraceEvents {
		name, ok := ev["name"].(string)
		if !ok || name == "" {
			return 0, fmt.Errorf("telemetry: event %d has no name", i)
		}
		ph, ok := ev["ph"].(string)
		if !ok || !validPhases[ph] {
			return 0, fmt.Errorf("telemetry: event %d (%q) has invalid phase %v", i, name, ev["ph"])
		}
		ts, ok := ev["ts"].(float64)
		if !ok || ts < 0 {
			return 0, fmt.Errorf("telemetry: event %d (%q) has invalid ts %v", i, name, ev["ts"])
		}
		if dur, present := ev["dur"]; present {
			d, ok := dur.(float64)
			if !ok || d < 0 {
				return 0, fmt.Errorf("telemetry: event %d (%q) has invalid dur %v", i, name, dur)
			}
		}
	}
	return len(tf.TraceEvents), nil
}
