package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerMuxRoutes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve.requests").Add(3)
	mux := HandlerMux(reg, map[string]http.Handler{
		"/slo": http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			io.WriteString(w, `{"slo":"ok"}`)
		}),
		"/metrics": http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			io.WriteString(w, "shadowed") // must be ignored: path is reserved
		}),
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if body := get("/slo"); !strings.Contains(body, `"slo":"ok"`) {
		t.Fatalf("/slo = %q", body)
	}
	if body := get("/"); !strings.Contains(body, "serve.requests") {
		t.Fatalf("registry snapshot missing counter: %q", body)
	}
	if body := get("/metrics"); strings.Contains(body, "shadowed") {
		t.Fatalf("/metrics was shadowed by an extra handler: %q", body)
	} else if !strings.Contains(body, "serve_requests") {
		t.Fatalf("/metrics missing Prometheus rendering: %q", body)
	}
}
