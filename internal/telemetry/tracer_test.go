package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestTracerSpansAndExport(t *testing.T) {
	var now uint64
	tr := NewTracer(func() uint64 { return now })

	lane := tr.Lane()
	if lane != 0 {
		t.Fatalf("first lane = %d, want 0", lane)
	}
	lane2 := tr.Lane()
	if lane2 != 1 {
		t.Fatalf("second lane = %d, want 1", lane2)
	}
	tr.FreeLane(lane2)
	if got := tr.Lane(); got != 1 {
		t.Fatalf("freed lane not reused: got %d", got)
	}

	now = 100
	sp := tr.Begin(lane, "miss", "access")
	now = 150
	tr.Complete(lane, "link.send", "link", 100, 120)
	tr.CompleteArgs(lane, "dram.path", "dram", 120, 150, map[string]any{"sd": 3})
	sp.EndArgs(map[string]any{"addr": 42})
	tr.Instant(lane, "health", "fault", nil)

	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	// The span closed by End covers [100, 150].
	var miss *Event
	for i := range evs {
		if evs[i].Name == "miss" {
			miss = &evs[i]
		}
	}
	if miss == nil || miss.TS != 100 || miss.Dur != 50 || miss.Ph != "X" {
		t.Fatalf("miss span = %+v", miss)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	n, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("ValidateTrace: %v", err)
	}
	if n != 4 {
		t.Fatalf("validated %d events, want 4", n)
	}
	if !strings.Contains(buf.String(), `"traceEvents"`) {
		t.Fatalf("export missing traceEvents: %s", buf.String())
	}
}

func TestTracerBackwardsSpanClamped(t *testing.T) {
	tr := NewTracer(func() uint64 { return 0 })
	tr.Complete(0, "x", "c", 50, 40) // end < start must clamp, not underflow
	ev := tr.Events()[0]
	if ev.Dur != 0 || ev.TS != 50 {
		t.Fatalf("clamped span = %+v", ev)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	lane := tr.Lane()
	tr.FreeLane(lane)
	tr.Complete(lane, "a", "b", 0, 1)
	sp := tr.Begin(lane, "a", "b")
	sp.End()
	tr.Instant(lane, "a", "b", nil)
	if tr.Len() != 0 || tr.Events() != nil || tr.Now() != 0 {
		t.Fatal("nil tracer recorded something")
	}
}

func TestValidateTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":      `[{]`,
		"no array":      `{"foo": 1}`,
		"missing name":  `{"traceEvents":[{"ph":"X","ts":1}]}`,
		"bad phase":     `{"traceEvents":[{"name":"a","ph":"Z","ts":1}]}`,
		"missing ts":    `{"traceEvents":[{"name":"a","ph":"X"}]}`,
		"negative dur":  `{"traceEvents":[{"name":"a","ph":"X","ts":1,"dur":-5}]}`,
		"string ts":     `{"traceEvents":[{"name":"a","ph":"X","ts":"now"}]}`,
	}
	for what, data := range cases {
		if _, err := ValidateTrace([]byte(data)); err == nil {
			t.Errorf("%s: validated but should not", what)
		}
	}
	if n, err := ValidateTrace([]byte(`{"traceEvents":[]}`)); err != nil || n != 0 {
		t.Fatalf("empty trace: n=%d err=%v", n, err)
	}
}

func TestDefaultClockMonotonic(t *testing.T) {
	tr := NewTracer(nil)
	a := tr.Now()
	b := tr.Now()
	if b < a {
		t.Fatalf("default clock went backwards: %d then %d", a, b)
	}
}
