package sdimm

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"sdimm/internal/durable"
	"sdimm/internal/rng"
)

// recOp is one deterministic workload operation for the recovery tests.
type recOp struct {
	addr  uint64
	write bool
	data  []byte
}

func recWorkload(seed uint64, n int, addrs uint64) []recOp {
	r := rng.New(seed)
	ops := make([]recOp, n)
	for i := range ops {
		ops[i].addr = r.Uint64n(addrs)
		if r.Bool(0.5) {
			ops[i].write = true
			ops[i].data = make([]byte, 24)
			for j := range ops[i].data {
				ops[i].data[j] = byte(r.Uint64n(256))
			}
		}
	}
	return ops
}

// driveCluster runs ops[from:to] sequentially, returning each op's result.
func driveCluster(t *testing.T, c *Cluster, ops []recOp, from, to int) [][]byte {
	t.Helper()
	out := make([][]byte, to-from)
	for i := from; i < to; i++ {
		if ops[i].write {
			if err := c.Write(ops[i].addr, ops[i].data); err != nil {
				t.Fatalf("write op %d: %v", i, err)
			}
		} else {
			got, err := c.Read(ops[i].addr)
			if err != nil {
				t.Fatalf("read op %d: %v", i, err)
			}
			out[i-from] = got
		}
	}
	return out
}

// TestRecoverClusterMatchesReference crashes a durable cluster mid-workload,
// recovers it from disk, finishes the workload, and checks the recovered run
// against an undisturbed reference cluster: identical read results and an
// identical position map. The post-recovery segment runs sequentially and
// through the pipeline at parallelism 4 — both must match the sequential
// reference bit-for-bit (run under -race via `make race`).
func TestRecoverClusterMatchesReference(t *testing.T) {
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism-%d", par), func(t *testing.T) {
			opts := ClusterOptions{SDIMMs: 2, Levels: 7, Key: []byte("rec-test-key"), Seed: 9}
			ops := recWorkload(5, 240, 48)
			const crashAt = 150

			ref, err := NewCluster(opts)
			if err != nil {
				t.Fatalf("NewCluster (reference): %v", err)
			}
			refRes := driveCluster(t, ref, ops, 0, len(ops))

			dopts := opts
			dopts.Durability = &DurabilityOptions{Dir: t.TempDir(), Interval: 32}
			dc, err := NewCluster(dopts)
			if err != nil {
				t.Fatalf("NewCluster (durable): %v", err)
			}
			if err := dc.PlanCrash(crashAt, 7); err != nil {
				t.Fatalf("PlanCrash: %v", err)
			}
			for i := 0; i < len(ops); i++ {
				var opErr error
				if ops[i].write {
					opErr = dc.Write(ops[i].addr, ops[i].data)
				} else {
					_, opErr = dc.Read(ops[i].addr)
				}
				if errors.Is(opErr, durable.ErrCrashed) {
					if i != crashAt {
						t.Fatalf("crash fired at op %d, planned %d", i, crashAt)
					}
					break
				}
				if opErr != nil {
					t.Fatalf("op %d: %v", i, opErr)
				}
			}
			dc.Close()

			rc, report, err := RecoverCluster(dopts)
			if err != nil {
				t.Fatalf("RecoverCluster: %v", err)
			}
			defer rc.Close()
			if got := rc.Seq(); got != crashAt {
				t.Fatalf("recovered Seq = %d, want %d (the torn access must not commit)", got, crashAt)
			}
			if report.RecordsReplayed == 0 {
				t.Fatalf("no records replayed (checkpoint cadence 32, crash at %d): %+v", crashAt, report)
			}
			if !report.TornTail {
				t.Fatalf("mid-record tear not reported: %+v", report)
			}

			// Finish the workload on the recovered cluster.
			var got [][]byte
			if par > 1 {
				pipe := rc.Pipeline(PipelineOptions{Window: 8, Parallelism: par})
				bops := make([]BatchOp, len(ops)-crashAt)
				for j, op := range ops[crashAt:] {
					bops[j] = BatchOp{Addr: op.addr, Write: op.write, Data: op.data}
				}
				rs := pipe.Do(bops)
				pipe.Close()
				got = make([][]byte, len(rs))
				for j, r := range rs {
					if r.Err != nil {
						t.Fatalf("pipeline op %d: %v", crashAt+j, r.Err)
					}
					got[j] = r.Data
				}
			} else {
				got = driveCluster(t, rc, ops, crashAt, len(ops))
			}
			for j, want := range refRes[crashAt:] {
				if ops[crashAt+j].write {
					continue
				}
				if !bytes.Equal(got[j], want) {
					t.Fatalf("read op %d diverged after recovery", crashAt+j)
				}
			}

			refPos, gotPos := ref.Positions(), rc.Positions()
			if len(refPos) != len(gotPos) {
				t.Fatalf("position map sizes diverged: %d vs %d", len(refPos), len(gotPos))
			}
			for a, l := range refPos {
				if gotPos[a] != l {
					t.Fatalf("position of addr %d diverged: %d vs %d", a, gotPos[a], l)
				}
			}
		})
	}
}

// TestNewClusterRefusesRecoverableState pins the clobber guard: a state
// directory that already holds checkpoints belongs to RecoverCluster, not
// NewCluster.
func TestNewClusterRefusesRecoverableState(t *testing.T) {
	opts := ClusterOptions{SDIMMs: 2, Levels: 7, Key: []byte("rec-test-key"), Seed: 9,
		Durability: &DurabilityOptions{Dir: t.TempDir()}}
	c, err := NewCluster(opts)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	c.Close()
	if _, err := NewCluster(opts); err == nil {
		t.Fatal("NewCluster reinitialized a directory holding recoverable state")
	}
}

// TestSplitScrubRepairsCorruptBucket persists a flipped ciphertext bit into
// a Split checkpoint and recovers: the scrub must rebuild the bucket from
// the other shards plus parity, and every payload must survive intact.
func TestSplitScrubRepairsCorruptBucket(t *testing.T) {
	// Member 1 is a data shard; the parity member (index SDIMMs) is repaired
	// by the identical XOR, which TestCrashRecoveryCorruptSplit* sweeps hit.
	opts := SplitClusterOptions{SDIMMs: 2, Levels: 7, Key: []byte("split-rec-key"), Seed: 3,
		Parity: true, Durability: &DurabilityOptions{Dir: t.TempDir(), Interval: 64}}
	c, err := NewSplitCluster(opts)
	if err != nil {
		t.Fatalf("NewSplitCluster: %v", err)
	}
	ops := recWorkload(11, 120, 32)
	final := map[uint64][]byte{}
	for i, op := range ops {
		if op.write {
			if err := c.Write(op.addr, op.data); err != nil {
				t.Fatalf("write op %d: %v", i, err)
			}
			final[op.addr] = op.data
		} else if _, err := c.Read(op.addr); err != nil {
			t.Fatalf("read op %d: %v", i, err)
		}
	}
	if _, ok := c.CorruptBucket(1, 5); !ok {
		t.Fatal("CorruptBucket found no materialized buckets")
	}
	if err := c.ForceCheckpoint(); err != nil {
		t.Fatalf("ForceCheckpoint: %v", err)
	}
	c.Close()

	rc, report, err := RecoverSplitCluster(opts)
	if err != nil {
		t.Fatalf("RecoverSplitCluster: %v", err)
	}
	defer rc.Close()
	if report.BucketsRepaired != 1 || report.BucketsUnrecoverable != 0 || len(report.Poisoned) != 0 {
		t.Fatalf("scrub did not repair cleanly: %+v", report)
	}
	for addr, want := range final {
		got, err := rc.Read(addr)
		if err != nil {
			t.Fatalf("read %d after repair: %v", addr, err)
		}
		if !bytes.Equal(got[:len(want)], want) {
			t.Fatalf("payload of addr %d corrupted despite parity repair", addr)
		}
	}
}

// TestIndependentScrubPoisonsAndWriteHeals: with no cross-SDIMM redundancy a
// corrupt bucket is unrecoverable — the scrub must quarantine it and poison
// the addresses provably lost with it, reads of those addresses must fail
// with ErrUnrecoverable (never silently return zeros), and a fresh write
// must heal the address. Which bucket loses a block depends on the seeded
// stash state, so the test scans corruption targets until one poisons.
func TestIndependentScrubPoisonsAndWriteHeals(t *testing.T) {
	ops := recWorkload(17, 160, 40)
	for attempt := 0; attempt < 12; attempt++ {
		opts := ClusterOptions{SDIMMs: 2, Levels: 7, Key: []byte("poison-test-key"), Seed: 13,
			Durability: &DurabilityOptions{Dir: t.TempDir(), Interval: 64}}
		c, err := NewCluster(opts)
		if err != nil {
			t.Fatalf("NewCluster: %v", err)
		}
		driveCluster(t, c, ops, 0, len(ops))
		if _, ok := c.CorruptBucket(attempt%2, attempt); !ok {
			t.Fatal("CorruptBucket found no materialized buckets")
		}
		if err := c.ForceCheckpoint(); err != nil {
			t.Fatalf("ForceCheckpoint: %v", err)
		}
		c.Close()

		rc, report, err := RecoverCluster(opts)
		if err != nil {
			t.Fatalf("RecoverCluster: %v", err)
		}
		if report.BucketsUnrecoverable != 1 {
			rc.Close()
			t.Fatalf("corrupt bucket not quarantined: %+v", report)
		}
		if len(report.Poisoned) == 0 {
			rc.Close()
			continue // lost bucket held only dummies this time; try another
		}

		addr := report.Poisoned[0]
		if _, err := rc.Read(addr); !errors.Is(err, ErrUnrecoverable) {
			rc.Close()
			t.Fatalf("read of poisoned addr %d = %v, want ErrUnrecoverable", addr, err)
		}
		heal := bytes.Repeat([]byte{0x77}, 24)
		if err := rc.Write(addr, heal); err != nil {
			rc.Close()
			t.Fatalf("healing write: %v", err)
		}
		got, err := rc.Read(addr)
		if err != nil {
			rc.Close()
			t.Fatalf("read after healing write: %v", err)
		}
		if !bytes.Equal(got[:len(heal)], heal) {
			rc.Close()
			t.Fatalf("healed payload mismatch for addr %d", addr)
		}
		rc.Close()
		return
	}
	t.Fatal("no corruption target produced a poisoned address in 12 attempts")
}
