package sdimm

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sdimm/internal/blame"
	"sdimm/internal/durable"
	"sdimm/internal/fault"
	"sdimm/internal/flight"
	"sdimm/internal/oram"
	isdimm "sdimm/internal/sdimm"
)

// This file is the parallel execution engine for functional clusters: a
// pool of persistent per-SDIMM worker goroutines and, on top of it, a
// decoupled two-wave access pipeline that keeps a window of independent ORAM
// accesses in flight behind the existing fault.Transactor links.
//
// The pipeline is decoupled: wave N+1's ACCESS exchanges run while wave N's
// APPEND broadcast and journal append are still in flight. The coordinator
// holds at most two waves — the wave being launched and the previous wave
// being retired — and the serialized coordinator work per wave shrinks to
// scheduling, the commit walk, and result finalization. Everything else
// (ACCESS exchanges, position-map commits, response decode, payload copies,
// APPEND broadcasts, the journal append, re-homing appends) runs off the
// coordinator goroutine.
//
// Determinism is preserved by construction, not by luck:
//
//   - Every draw from the cluster's shared RNG (leaf picks, re-homing)
//     happens on the coordinator goroutine, in logical-access order. Workers
//     never touch shared randomness.
//   - Each worker owns exactly one SDIMM's link, buffer, and health record,
//     and drains its task queue FIFO in submission (= logical) order. The
//     submission order per worker — ACCESS tasks of wave N, wave N's append
//     walk, ACCESS tasks of wave N+1, wave N's re-homes — is a pure function
//     of the schedule, so every buffer observes the same operation sequence
//     at any parallelism.
//   - Position-map commits happen on the owning worker the moment its buffer
//     executed the access, through the sharded position map (each access in
//     a wave touches a distinct address, so commits are per-address
//     independent). The journal record stream is still assembled on the
//     coordinator in logical order.
//   - Health is read through a coordinator-owned snapshot refreshed at the
//     pipeline's quiescent points (one per iteration), so scheduling and
//     re-homing decisions never race worker-side health transitions. The
//     snapshot is at most one wave stale — a member that fails mid-wave is
//     seen by the schedule one wave later, exactly as a sequential client
//     discovers a failure on its next access.
//   - The wave schedule depends only on the configured window and the
//     addresses in flight, never on Parallelism, which bounds worker
//     concurrency and nothing else.
//
// A Parallelism: 1 pipeline and a Parallelism: N pipeline therefore produce
// bitwise-identical position maps, stash contents, and telemetry counters
// from the same seed — the equivalence suites in parallel_test.go and
// parallel_soak_test.go prove it.

// workerPool runs tasks on persistent per-member goroutines. Tasks
// submitted to one member execute FIFO in submission order; tasks across
// members run concurrently, up to the pool's parallelism bound.
type workerPool struct {
	tasks []chan func()
	sem   chan struct{}
	wg    sync.WaitGroup
	once  sync.Once
}

// newWorkerPool starts n workers whose aggregate concurrency is capped at
// parallelism (values < 1 are clamped to 1). queue bounds how many tasks
// can be pending per worker before submit blocks.
func newWorkerPool(n, parallelism, queue int) *workerPool {
	if parallelism < 1 {
		parallelism = 1
	}
	if queue < 1 {
		queue = 1
	}
	p := &workerPool{
		tasks: make([]chan func(), n),
		sem:   make(chan struct{}, parallelism),
	}
	for i := range p.tasks {
		ch := make(chan func(), queue)
		p.tasks[i] = ch
		go func() {
			for fn := range ch {
				p.sem <- struct{}{}
				fn()
				<-p.sem
			}
		}()
	}
	return p
}

// submit queues fn on member w's worker, tracked by the pool's own
// WaitGroup. Pair with barrier.
func (p *workerPool) submit(w int, fn func()) {
	p.wg.Add(1)
	p.tasks[w] <- func() {
		defer p.wg.Done()
		fn()
	}
}

// submitWG queues fn on member w's worker, tracked by a caller-owned
// WaitGroup — the pipeline uses per-wave groups so two waves can be in
// flight without sharing a barrier.
func (p *workerPool) submitWG(w int, wg *sync.WaitGroup, fn func()) {
	wg.Add(1)
	p.tasks[w] <- func() {
		defer wg.Done()
		fn()
	}
}

// barrier blocks until every submit-tracked task has completed. After
// barrier returns the coordinator observes all worker writes (the WaitGroup
// establishes the happens-before edge).
func (p *workerPool) barrier() { p.wg.Wait() }

// close stops the workers after the submit-tracked tasks drain. Idempotent.
// Callers using submitWG must wait their own groups before closing.
func (p *workerPool) close() {
	p.once.Do(func() {
		p.wg.Wait()
		for _, ch := range p.tasks {
			close(ch)
		}
	})
}

// BatchOp is one operation submitted to a Pipeline: a read (Write false) or
// a write of Data (padded to the cluster block size). Migrate marks the op
// as a rebalance migration step (a read journaled as KindMigrate whose
// payload is not delivered); drivers build migration batches from
// Cluster.NextMigrations and interleave them with workload ops — on the
// channel the two are indistinguishable.
type BatchOp struct {
	Addr    uint64
	Write   bool
	Data    []byte
	Migrate bool
}

// BatchResult is the outcome of one BatchOp. Data is the payload for reads
// (zeros if the address was never written); Err reports a failed access.
type BatchResult struct {
	Data []byte
	Err  error
}

// PipelineOptions size a Cluster access pipeline.
type PipelineOptions struct {
	// Window is the logical batch window: up to this many accesses are
	// scheduled into one wave. The wave schedule is a pure function of the
	// submitted operations and the window — never of Parallelism — so runs
	// that differ only in Parallelism stay bitwise identical. Default 8.
	Window int
	// Parallelism bounds how many SDIMM workers execute concurrently
	// (default = Window). 1 degenerates to sequential execution of the
	// exact same logical schedule.
	Parallelism int
	// FillTimeout bounds how long the streaming front end (Serve) waits
	// for more operations before launching a partially filled wave. Without
	// a bound a trickle of callers stalls behind a window that never fills
	// — the last ops of a batch would wait indefinitely for peers that
	// never come. Zero selects DefaultFillTimeout; negative launches
	// partial waves immediately (no coalescing delay). Do ignores it: a
	// slice batch is fully known up front.
	FillTimeout time.Duration
}

// DefaultFillTimeout is the streaming pipeline's window-fill bound: long
// enough that concurrent request streams coalesce into full waves, short
// enough to be invisible next to request deadlines in the hundreds of
// milliseconds.
const DefaultFillTimeout = 2 * time.Millisecond

func (o PipelineOptions) withDefaults() PipelineOptions {
	if o.Window <= 0 {
		o.Window = 8
	}
	if o.Parallelism <= 0 {
		o.Parallelism = o.Window
	}
	if o.FillTimeout == 0 {
		o.FillTimeout = DefaultFillTimeout
	}
	return o
}

// Pipeline is a batched access engine over a Cluster: it keeps up to two
// waves of up to Window independent accesses in flight, fanning whole
// accessORAM operations out to the owning SDIMMs' workers (the Independent
// protocol's unit of distribution) and overlapping each wave's APPEND
// broadcast and journal append with the next wave's ACCESS exchanges.
//
// The pipeline owns the cluster's request stream while in use: do not call
// Read/Write on the underlying Cluster concurrently with Do. Close stops
// the workers.
type Pipeline struct {
	c    *Cluster
	opts PipelineOptions
	pool *workerPool

	// Wave scratch, reused across waves so the steady-state batch loop
	// recycles its waveStates and pipeOps (and their payload buffers)
	// instead of reallocating them every wave.
	wsFree []*waveState
	free   []*pipeOp

	// healthSnap is the coordinator's view of member health, refreshed at
	// the pipeline's quiescent points. Scheduling and re-homing read it
	// instead of the live health records, which workers mutate while the
	// coordinator plans the next wave.
	healthSnap []fault.State

	// rehomeWG tracks the worker-side re-homing appends the coordinator
	// issues one at a time during wave retirement.
	rehomeWG sync.WaitGroup

	// waveN numbers the waves this pipeline has run — the wave id the blame
	// profiler and flight recorder stamp on their records.
	waveN uint64
}

// Pipeline builds a batched access pipeline over the cluster. The per-worker
// queue holds two full waves plus a wave's append walk and a re-home, so the
// coordinator never blocks on submission while the pipeline is in steady
// overlap.
func (c *Cluster) Pipeline(opts PipelineOptions) *Pipeline {
	opts = opts.withDefaults()
	return &Pipeline{
		c:    c,
		opts: opts,
		pool: newWorkerPool(len(c.buffers), opts.Parallelism, 2*opts.Window+4),
	}
}

// Close stops the per-SDIMM workers. The pipeline must not be used after.
func (p *Pipeline) Close() { p.pool.close() }

// waveState is one wave in flight: its scheduled ops, the addresses they
// touch (for the next wave's conflict stall), the journal batch, and the
// WaitGroups tracking its two fan-outs. States are pooled across waves.
type waveState struct {
	ops   []*pipeOp
	addrs map[uint64]bool
	recs  []durable.Record
	n     int

	wgA sync.WaitGroup // ACCESS fan-out
	wgB sync.WaitGroup // APPEND broadcast

	// jerr delivers the journal goroutine's result; journal records whether
	// one was spawned for this wave. The channel is buffered so the
	// goroutine never blocks on a retired wave.
	jerr    chan error
	journal bool

	waveID    uint64
	traceEnd  func(map[string]any)
	traceLane int
}

// takeWave pops a pooled waveState or allocates a fresh one. A pipeline
// holds at most two (launching + retiring), so the pool stays tiny.
func (p *Pipeline) takeWave() *waveState {
	n := len(p.wsFree)
	if n == 0 {
		return &waveState{
			addrs:     make(map[uint64]bool, p.opts.Window),
			jerr:      make(chan error, 1),
			traceLane: -1,
		}
	}
	w := p.wsFree[n-1]
	p.wsFree[n-1] = nil
	p.wsFree = p.wsFree[:n-1]
	return w
}

// releaseWave returns a retired wave's ops to the pool and resets the state
// for reuse.
func (p *Pipeline) releaseWave(w *waveState) {
	for i, po := range w.ops {
		p.free = append(p.free, po)
		w.ops[i] = nil
	}
	w.ops = w.ops[:0]
	clear(w.addrs)
	w.recs = clearRecords(w.recs)
	w.n = 0
	w.journal = false
	w.traceEnd = nil
	w.traceLane = -1
	p.wsFree = append(p.wsFree, w)
}

// pipeOp is one access moving through a wave. Ops are pooled across waves:
// every field is reset by takeOp, and the slice fields keep their backing
// arrays so steady-state waves reuse them. out is the exception — it is
// handed to the caller in a BatchResult and never pooled.
type pipeOp struct {
	idx     int // index into the submitted batch
	addr    uint64
	op      oram.Op
	migrate bool   // rebalance migration step (journals as KindMigrate)
	data    []byte // padded write payload (nil for reads; aliases dataBuf)

	oldG, newG uint64
	sd, sdNew  int
	keep       bool

	err       error  // first error on the access (scheduling, exchange, ack)
	decodeErr error  // response decode failure (folded into err after commit)
	skip      bool   // scheduling failed: no exchanges at all
	committed bool   // commit walk journaled this op
	respBody  []byte // exchange response copy (phase A, written by owner worker)
	resp      isdimm.AccessResponse
	blk       oram.Block
	out       []byte // read payload for delivery (worker-built, escapes)

	appendErr []error  // per-SDIMM failed append exchange (phase B)
	appendBad [][]byte // per-SDIMM malformed append ack (phase B)

	dataBuf []byte // reusable backing store for data
}

// takeOp pops a pooled pipeOp (or allocates the pool's first ones),
// resetting every field while keeping the reusable backing arrays.
func (p *Pipeline) takeOp() *pipeOp {
	n := len(p.free)
	if n == 0 {
		return &pipeOp{}
	}
	po := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	*po = pipeOp{
		dataBuf:   po.dataBuf,
		respBody:  po.respBody[:0],
		appendErr: po.appendErr[:0],
		appendBad: po.appendBad[:0],
	}
	return po
}

// resizeErrs returns a zeroed error slice of length n, reusing capacity.
func resizeErrs(s []error, n int) []error {
	if cap(s) < n {
		return make([]error, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// resizeFrames returns a zeroed byte-slice slice of length n, reusing
// capacity.
func resizeFrames(s [][]byte, n int) [][]byte {
	if cap(s) < n {
		return make([][]byte, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// clearRecords empties a record batch for reuse without retaining payload
// references.
func clearRecords(recs []durable.Record) []durable.Record {
	clear(recs)
	return recs[:0]
}

// snapshotHealth refreshes the coordinator's health snapshot. Called only at
// quiescent points (no worker task in flight), so the read is race-free and
// the snapshot is a pure function of the completed exchange history.
func (p *Pipeline) snapshotHealth() {
	c := p.c
	if cap(p.healthSnap) < len(c.health) {
		p.healthSnap = make([]fault.State, len(c.health))
	}
	p.healthSnap = p.healthSnap[:len(c.health)]
	for i, h := range c.health {
		p.healthSnap[i] = h.State()
	}
}

// pickLeafSnap draws a uniform leaf among the snapshot-eligible members —
// the pipeline's counterpart of pickHealthyLeaf, reading the coordinator's
// health snapshot instead of the live (worker-mutated) records.
func (p *Pipeline) pickLeafSnap(globalLeaves uint64) (uint64, error) {
	return p.c.pickLeafStates(func(i int) fault.State { return p.healthSnap[i] },
		len(p.healthSnap), globalLeaves)
}

// Do executes ops through the pipeline and returns one result per op, in
// order. Semantics match issuing the same operations through Read/Write one
// at a time, with one deliberate difference: accesses in the same wave
// observe the position map and health state as of the wave's start. A wave
// never schedules an address that appears in the wave still in flight or
// earlier in itself (the schedule breaks there), so per-address read/write
// ordering is preserved exactly.
//
// Each loop iteration launches at most one new wave and retires the
// previous one; the previous wave's APPEND broadcast and journal append
// overlap the new wave's ACCESS exchanges. Checkpoints run only at fully
// drained points, so the checkpoint cadence (in committed-access terms) is
// identical to the sequential path's.
func (p *Pipeline) Do(ops []BatchOp) []BatchResult {
	c := p.c
	res := make([]BatchResult, len(ops))
	globalLeaves := uint64(1) << (c.levels - 1)
	p.snapshotHealth()

	var prev *waveState
	start := 0
	for start < len(ops) || prev != nil {
		// Observability taps: nil-safe no-ops without a blame collector or
		// flight recorder attached; neither draws randomness nor feeds state
		// back, so attaching them cannot perturb the wave schedule or the
		// bitwise-equivalence guarantee.
		bw := c.blame.BeginWave()

		if c.crashedNow() {
			// The cluster died at a planned crash point. Retire the in-flight
			// wave first — its journal outcome decides its results — then fail
			// everything not yet scheduled.
			if prev != nil {
				p.retire(prev, res, bw)
				prev = nil
			}
			for i := start; i < len(ops); i++ {
				res[i] = BatchResult{Err: durable.ErrCrashed}
			}
			bw.End(0)
			return res
		}

		// Checkpoint gate: when a checkpoint is due the pipeline stalls the
		// schedule and drains, so the checkpoint captures a quiescent image at
		// the same committed-sequence boundary the sequential path would.
		ckptDue := c.checkpointDue()

		var w *waveState
		if start < len(ops) && !ckptDue {
			w = p.scheduleWave(ops, start, prev, globalLeaves)
			if w != nil {
				p.dispatchAccess(w)
			}
		}
		bw.Mark(blame.PhaseSchedule)

		if prev != nil {
			p.retire(prev, res, bw)
			prev = nil
		} else {
			bw.Mark(blame.PhaseRetireWait)
			bw.Mark(blame.PhaseFinalize)
		}

		launched := 0
		if w != nil {
			w.wgA.Wait()
			bw.Mark(blame.PhaseAccessWait)
			// Quiescent point: the previous wave is fully retired and this
			// wave's ACCESS tasks have drained — no worker task is in flight.
			p.snapshotHealth()
			if c.crashedNow() {
				// The previous wave's journal goroutine hit the crash point
				// while this wave's exchanges ran. Nothing of this wave may
				// commit; results keep any per-op exchange error (so they match
				// the race-free outcome) and report the crash otherwise.
				for _, po := range w.ops {
					if po.err == nil {
						po.err = durable.ErrCrashed
					}
					res[po.idx] = BatchResult{Err: po.err}
				}
				start += w.n
				p.releaseWave(w)
				bw.End(0)
				continue
			}
			p.commit(w)
			bw.Mark(blame.PhaseCommit)
			p.dispatchAppend(w)
			p.spawnJournal(w)
			c.flight.Coordinator().Record(flight.KindPhase, uint64(blame.PhaseDispatch), w.waveID)
			start += w.n
			launched = w.n
			prev = w
			bw.Mark(blame.PhaseDispatch)
		} else if ckptDue {
			// Fully drained (prev retired above, nothing launched): safe to
			// capture. Close the unreached phases at zero length first so the
			// checkpoint interval carries exactly the checkpoint time.
			bw.Mark(blame.PhaseAccessWait)
			bw.Mark(blame.PhaseCommit)
			bw.Mark(blame.PhaseDispatch)
			err := c.ForceCheckpoint()
			bw.Mark(blame.PhaseCheckpoint)
			if err != nil {
				for i := start; i < len(ops); i++ {
					res[i] = BatchResult{Err: err}
				}
				bw.End(0)
				return res
			}
		}
		bw.End(launched)
	}
	return res
}

// scheduleWave admits up to Window ops with addresses distinct from each
// other and from the wave still in flight, drawing all shared randomness on
// the coordinator in logical order. Returns nil when the first candidate op
// conflicts with the in-flight wave — the caller retires it and retries, so
// progress is guaranteed (with no wave in flight the first op never
// conflicts).
func (p *Pipeline) scheduleWave(ops []BatchOp, start int, prev *waveState, globalLeaves uint64) *waveState {
	w := p.takeWave()
	for i := start; i < len(ops) && len(w.ops) < p.opts.Window; i++ {
		a := ops[i].Addr
		if w.addrs[a] || (prev != nil && prev.addrs[a]) {
			// The next op must observe the earlier access's commit — and for
			// the in-flight wave, its append landing and any re-home — so the
			// wave ends here.
			break
		}
		w.addrs[a] = true
		w.ops = append(w.ops, p.schedule(ops[i], i, globalLeaves))
	}
	w.n = len(w.ops)
	if w.n == 0 {
		p.releaseWave(w)
		return nil
	}
	w.waveID = p.waveN
	p.waveN++
	return w
}

// schedule prepares one access: position lookup and every shared-RNG draw,
// in logical order on the coordinator. Health reads go through the snapshot.
func (p *Pipeline) schedule(op BatchOp, idx int, globalLeaves uint64) *pipeOp {
	c := p.c
	po := p.takeOp()
	po.idx, po.addr, po.op = idx, op.Addr, oram.OpRead
	po.migrate = op.Migrate
	if op.Write {
		if op.Migrate {
			po.err = fmt.Errorf("sdimm: migration op %d cannot be a write", op.Addr)
			po.skip = true
			return po
		}
		po.op = oram.OpWrite
		if len(op.Data) > c.blockSize {
			po.err = fmt.Errorf("sdimm: payload %d exceeds block size %d", len(op.Data), c.blockSize)
			po.skip = true
			return po
		}
		if cap(po.dataBuf) < c.blockSize {
			po.dataBuf = make([]byte, c.blockSize)
		}
		po.data = po.dataBuf[:c.blockSize]
		clear(po.data)
		copy(po.data, op.Data)
	}

	oldG, mapped := c.pos.Get(po.addr)
	if !mapped {
		var err error
		if oldG, err = p.pickLeafSnap(globalLeaves); err != nil {
			po.err, po.skip = err, true
			return po
		}
	}
	po.oldG = oldG
	po.sd = int(oldG >> c.localBits)
	if st := p.healthSnap[po.sd]; st == fault.Failed || st == fault.Removed {
		po.err = c.wrapErr(po.sd, "access", fault.ErrUnavailable)
		po.skip = true
		return po
	}
	newG, err := p.pickLeafSnap(globalLeaves)
	if err != nil {
		po.err, po.skip = err, true
		return po
	}
	po.newG = newG
	po.sdNew = int(newG >> c.localBits)
	po.keep = po.sd == po.sdNew
	return po
}

// dispatchAccess fans the wave's ACCESS exchanges out to the owning SDIMMs'
// workers and opens the wave's trace span.
func (p *Pipeline) dispatchAccess(w *waveState) {
	c := p.c
	c.flight.Coordinator().Record(flight.KindWave, w.waveID, uint64(w.n))
	if tr := c.tm.tracer; tr != nil {
		w.traceLane = tr.Lane()
		sp := tr.Begin(w.traceLane, "cluster.wave", "cluster")
		w.traceEnd = sp.EndArgs
	}
	for _, po := range w.ops {
		if po.skip {
			continue
		}
		po := po
		p.pool.submitWG(po.sd, &w.wgA, func() { p.accessTask(po) })
	}
}

// accessTask runs one access on the owning SDIMM's worker: the exchange, the
// position-map commit, the response decode, and the read-payload copy. The
// payload copy is the one allocation that escapes — it is handed to the
// caller — so building it here takes it off the coordinator's critical path.
func (p *Pipeline) accessTask(po *pipeOp) {
	c := p.c
	st := c.blame.WorkerBegin()
	defer c.blame.WorkerEnd(blame.WorkerAccess, st)

	mask := uint64(1)<<c.localBits - 1
	req := isdimm.AccessRequest{
		Addr:    po.addr,
		Op:      po.op,
		Data:    po.data,
		OldLeaf: po.oldG & mask,
		NewLeaf: po.newG & mask,
		Keep:    po.keep,
	}
	resp, err := c.exchange(po.sd, "access", c.accessBody(po.sd, req))
	if err != nil {
		po.err = err
		return
	}
	// Exchange hands back transactor-owned scratch; a later op sharing this
	// link overwrites it, so the op keeps a copy.
	po.respBody = append(po.respBody[:0], resp...)
	// Worker-side position commit: the owning buffer has executed the
	// access, so the new position is truth. Addresses within and across
	// in-flight waves are distinct, and the sharded map serializes any
	// shard-level contention, so this is exactly the staged-commit rule of
	// the sequential path — just off the coordinator.
	c.pos.Set(po.addr, po.newG)
	r, derr := isdimm.UnmarshalResponse(po.respBody, c.blockSize)
	if derr != nil {
		// Decode failure is held apart from err: the access committed (the
		// buffer executed it), so the commit walk must still journal it —
		// matching the sequential path, which journals before decoding.
		po.decodeErr = c.wrapErr(po.sd, "access response", derr)
		return
	}
	po.resp = r
	po.blk = r.Block
	po.blk.Addr = po.addr
	po.blk.Leaf = po.newG & mask
	if po.op == oram.OpRead && !po.migrate {
		if r.Dummy || r.Block.Data == nil {
			po.out = make([]byte, c.blockSize)
		} else {
			po.out = append([]byte(nil), r.Block.Data...)
		}
	}
}

// commit walks the wave in logical order on the coordinator, building the
// journal batch for every access whose owning buffer executed it. A failed
// exchange leaves the map untouched and journals nothing — exactly the
// staged-commit rule of the sequential path. (The position-map updates
// themselves already committed worker-side in accessTask.)
func (p *Pipeline) commit(w *waveState) {
	c := p.c
	w.recs = w.recs[:0]
	for _, po := range w.ops {
		if po.skip || po.err != nil {
			continue
		}
		// makeRecord keys the record kind off the cluster's migrating flag;
		// setting it per-op here keeps the coordinator's logical order — the
		// journal carries migrations and workload interleaved exactly as
		// scheduled.
		c.migrating = po.migrate
		w.recs = append(w.recs, c.makeRecord(po.addr, po.op, po.data))
		c.migrating = false
		po.committed = true
		if po.decodeErr != nil {
			// Journaled but undeliverable: surface the decode failure now that
			// the record exists, so the append walk skips the op.
			po.err = po.decodeErr
		}
	}
}

// dispatchAppend launches the wave's APPEND broadcast: one task per SDIMM
// walks the wave in logical order, so each buffer sees its appends in the
// same sequence at any parallelism. Outcomes land in per-(op, SDIMM) slots
// and are resolved at retirement.
func (p *Pipeline) dispatchAppend(w *waveState) {
	c := p.c
	for _, po := range w.ops {
		po.appendErr = resizeErrs(po.appendErr, len(c.buffers))
		po.appendBad = resizeFrames(po.appendBad, len(c.buffers))
	}
	for j := range c.buffers {
		j := j
		p.pool.submitWG(j, &w.wgB, func() {
			st := c.blame.WorkerBegin()
			defer c.blame.WorkerEnd(blame.WorkerAppend, st)
			for _, po := range w.ops {
				if po.skip || po.err != nil {
					continue
				}
				real := !po.keep && j == po.sdNew && !po.resp.Dummy
				if !real {
					// Own-health read: only this worker's exchanges mutate
					// health[j], so the read is race-free and deterministic.
					if hs := c.health[j].State(); hs == fault.Failed || hs == fault.Removed {
						// A dead or removed buffer has no channel; its dummy
						// is undeliverable.
						continue
					}
				}
				ack, err := c.exchange(j, "append", c.appendBody(j, po.blk, !real))
				switch {
				case err != nil:
					po.appendErr[j] = err
				case len(ack) != 1 || ack[0] != appendAck:
					po.appendBad[j] = append([]byte(nil), ack...)
				}
			}
		})
	}
}

// spawnJournal hands the wave's journal batch to a dedicated goroutine so
// the chained HMAC extension and file write overlap the next wave's ACCESS
// exchanges. The whole batch seals as one chained group (one tag per wave).
// Retirement collects the outcome before any of the wave's results are
// acknowledged — the write-ahead contract is unchanged, only the waiting
// moved.
func (p *Pipeline) spawnJournal(w *waveState) {
	c := p.c
	if len(w.recs) == 0 || c.dur == nil || c.replaying {
		w.journal = false
		return
	}
	w.journal = true
	recs := w.recs
	go func() { w.jerr <- c.appendRecords(recs) }()
}

// retire completes a dispatched wave: waits out its APPEND broadcast and
// journal append, resolves append outcomes (lost-append accounting,
// re-homing, malformed acks), and delivers results.
func (p *Pipeline) retire(w *waveState, res []BatchResult, bw *blame.Wave) {
	c := p.c
	w.wgB.Wait()
	var jerr error
	if w.journal {
		jerr = <-w.jerr
	}
	bw.Mark(blame.PhaseRetireWait)

	if jerr != nil {
		// The journal append died mid-wave (a planned crash point, or real
		// I/O failure). Some records may be durable, but acknowledging any
		// result now could acknowledge an access the journal lost — fail
		// every journaled op; recovery re-drives from the journal's valid
		// prefix.
		for _, po := range w.ops {
			if po.committed {
				po.err = jerr
			}
		}
	}
	globalLeaves := uint64(1) << (c.levels - 1)
	for _, po := range w.ops {
		p.finalize(po, globalLeaves, res)
	}
	if w.traceEnd != nil {
		if jerr != nil {
			w.traceEnd(map[string]any{"ops": w.n, "err": true})
		} else {
			w.traceEnd(map[string]any{"ops": w.n})
		}
		c.tm.tracer.FreeLane(w.traceLane)
	}
	c.flight.Coordinator().Record(flight.KindPhase, uint64(blame.PhaseFinalize), w.waveID)
	p.releaseWave(w)
	bw.Mark(blame.PhaseFinalize)
}

// finalize resolves one access at retirement: lost-append accounting,
// re-homing, malformed-ack detection, the poison veto, payload delivery,
// and the cluster.* observation.
func (p *Pipeline) finalize(po *pipeOp, globalLeaves uint64, res []BatchResult) {
	c := p.c
	if po.err == nil {
		for j := range c.buffers {
			if po.appendErr[j] != nil {
				c.tm.appendsLost.Inc()
				if !po.keep && j == po.sdNew && !po.resp.Dummy {
					// The migrating block was in this exchange: re-home it
					// (leaf draws on the coordinator, the append on the new
					// owner's worker) instead of losing the payload.
					if rerr := p.rehomePooled(po.addr, po.blk, j, globalLeaves); rerr != nil && po.err == nil {
						po.err = rerr
					}
				}
				continue
			}
			if po.appendBad[j] != nil && po.err == nil {
				po.err = c.wrapErr(j, "append", fmt.Errorf("sdimm: malformed append ack %x", po.appendBad[j]))
			}
		}
	}

	// Poison veto at delivery (same rule as the sequential path): the access
	// ran normally, but a payload lost to unrecoverable corruption is an
	// error, not zeros. Migration steps are exempt — their payload is never
	// delivered, and a poisoned block must still be carried off a draining
	// member.
	if po.err == nil && po.op == oram.OpRead && !po.migrate && c.poisoned[po.addr] {
		c.tm.poisonedReads.Inc()
		po.err = fmt.Errorf("sdimm: read %d: %w", po.addr, ErrUnrecoverable)
	}

	out := BatchResult{Err: po.err}
	if po.err == nil && po.op == oram.OpRead && !po.migrate {
		out.Data = po.out
	}
	// Migration steps are accounted under cluster.migrations, not the
	// workload access counters — same split as the sequential DrainStep.
	if po.migrate {
		if po.err == nil {
			c.tm.migrations.Inc()
		}
	} else {
		c.tm.observe(po.op, po.err)
	}
	res[po.idx] = out
}

// rehomePooled re-homes an in-flight real block whose APPEND exchange was
// lost. Leaf draws stay on the coordinator (logical order); each candidate
// append runs as a task on the new owner's worker, because per-SDIMM command
// scratch and link framing belong to the goroutine driving that link — the
// coordinator must not touch a link whose worker may be running the next
// wave's exchanges.
func (p *Pipeline) rehomePooled(addr uint64, blk oram.Block, exclude int, globalLeaves uint64) error {
	c := p.c
	c.tm.rehomes.Inc()
	if tr := c.tm.tracer; tr != nil {
		tr.Instant(0, "cluster.rehome", "cluster", map[string]any{"addr": addr, "exclude": exclude})
	}
	var lastErr error
	for try := 0; try < 8*len(c.buffers); try++ {
		g, err := p.pickLeafSnap(globalLeaves)
		if err != nil {
			return err
		}
		sd := int(g >> c.localBits)
		if sd == exclude {
			continue
		}
		nb := blk
		nb.Leaf = g & (uint64(1)<<c.localBits - 1)
		c.tm.rehomeAttempts.Inc()
		var ack []byte
		var xerr error
		p.pool.submitWG(sd, &p.rehomeWG, func() {
			ws := c.blame.WorkerBegin()
			defer c.blame.WorkerEnd(blame.WorkerAppend, ws)
			resp, err := c.exchange(sd, "rehome append", c.appendBody(sd, nb, false))
			if err != nil {
				xerr = err
				return
			}
			ack = append([]byte(nil), resp...)
		})
		p.rehomeWG.Wait()
		if xerr != nil {
			lastErr = xerr
			continue
		}
		if len(ack) != 1 || ack[0] != appendAck {
			return c.wrapErr(sd, "rehome append", fmt.Errorf("sdimm: malformed append ack %x", ack))
		}
		c.pos.Set(addr, g)
		return nil
	}
	if lastErr == nil {
		lastErr = errors.New("sdimm: no alternative SDIMM for in-flight block")
	}
	c.tm.rehomeFailures.Inc()
	return fmt.Errorf("sdimm: re-homing block %d failed: %w", addr, lastErr)
}

// AsyncOp is one operation submitted to the streaming pipeline front
// (Serve): the op plus a buffered channel that receives exactly one result
// when the op retires. Every submitted op is answered — delivered, failed,
// or failed-on-crash — before Serve returns.
type AsyncOp struct {
	Op   BatchOp
	Done chan BatchResult
}

// NewAsyncOp wraps op with a result channel sized so the pipeline never
// blocks on delivery.
func NewAsyncOp(op BatchOp) *AsyncOp {
	return &AsyncOp{Op: op, Done: make(chan BatchResult, 1)}
}

// liveWave is one Serve wave in flight: the engine state plus the submitted
// ops awaiting its results.
type liveWave struct {
	w    *waveState
	acks []*AsyncOp
	res  []BatchResult
}

// Serve is the pipeline's streaming front end: it pulls individually
// submitted operations from in, coalesces them into waves of up to Window,
// and drives the same schedule/dispatch/retire machinery as Do — wave N+1's
// ACCESS exchanges still overlap wave N's APPEND broadcast and journal
// append. A wave launches as soon as it is full, the moment in closes, or
// after FillTimeout with whatever has arrived — a partially filled wave
// never waits indefinitely for callers that never come.
//
// Serve owns the cluster's request stream while running: do not call Do,
// Read, or Write concurrently. It returns only after in is closed and every
// submitted op has received its result; after a crash (planned crash point
// or journal failure) remaining and subsequent ops fail with the crash
// error, preserving the write-ahead contract exactly as Do does. Ordering:
// ops are scheduled in arrival order, and two in-flight ops never share an
// address (the wave schedule breaks on conflicts), so per-address semantics
// match submitting them one at a time.
func (p *Pipeline) Serve(in <-chan *AsyncOp) {
	c := p.c
	globalLeaves := uint64(1) << (c.levels - 1)
	p.snapshotHealth()

	var (
		buf    []*AsyncOp // admitted, not yet scheduled (arrival order)
		opsBuf []BatchOp  // schedule scratch, rebuilt from buf each wave
		prev   *liveWave
		closed bool
	)
	timer := time.NewTimer(time.Hour)
	stopFillTimer(timer)

	// bail fails everything still buffered or arriving and returns. Called
	// after prev is fully retired.
	bail := func(err error) {
		for _, a := range buf {
			a.Done <- BatchResult{Err: err}
		}
		buf = buf[:0]
		if !closed {
			for a := range in {
				a.Done <- BatchResult{Err: err}
			}
		}
	}

	for {
		if !closed && len(buf) < p.opts.Window {
			// Block for the first op only when the pipeline is idle —
			// with a wave in flight there is retirement work to do even if
			// no new ops arrive.
			buf, closed = p.fillBuf(in, buf, len(buf) == 0 && prev == nil, timer)
		}
		if len(buf) == 0 && prev == nil {
			if closed {
				return
			}
			continue
		}

		bw := c.blame.BeginWave()
		if c.crashedNow() {
			if prev != nil {
				p.retire(prev.w, prev.res, bw)
				deliverWave(prev)
				prev = nil
			} else {
				bw.Mark(blame.PhaseSchedule)
				bw.Mark(blame.PhaseRetireWait)
				bw.Mark(blame.PhaseFinalize)
			}
			bw.End(0)
			bail(durable.ErrCrashed)
			return
		}

		ckptDue := c.checkpointDue()
		var lw *liveWave
		if len(buf) > 0 && !ckptDue {
			opsBuf = opsBuf[:0]
			for _, a := range buf {
				opsBuf = append(opsBuf, a.Op)
			}
			var pw *waveState
			if prev != nil {
				pw = prev.w
			}
			if w := p.scheduleWave(opsBuf, 0, pw, globalLeaves); w != nil {
				p.dispatchAccess(w)
				lw = &liveWave{
					w:    w,
					acks: append([]*AsyncOp(nil), buf[:w.n]...),
					res:  make([]BatchResult, w.n),
				}
			}
		}
		bw.Mark(blame.PhaseSchedule)

		if prev != nil {
			p.retire(prev.w, prev.res, bw)
			deliverWave(prev)
			prev = nil
		} else {
			bw.Mark(blame.PhaseRetireWait)
			bw.Mark(blame.PhaseFinalize)
		}

		launched := 0
		if lw != nil {
			w := lw.w
			w.wgA.Wait()
			bw.Mark(blame.PhaseAccessWait)
			// Quiescent point, exactly as in Do.
			p.snapshotHealth()
			if c.crashedNow() {
				// The retired wave's journal goroutine hit the crash point
				// while this wave's exchanges ran: nothing of this wave may
				// commit.
				for _, po := range w.ops {
					if po.err == nil {
						po.err = durable.ErrCrashed
					}
					lw.res[po.idx] = BatchResult{Err: po.err}
				}
				deliverWave(lw)
				buf = buf[w.n:]
				p.releaseWave(w)
				bw.End(0)
				bail(durable.ErrCrashed)
				return
			}
			p.commit(w)
			bw.Mark(blame.PhaseCommit)
			p.dispatchAppend(w)
			p.spawnJournal(w)
			c.flight.Coordinator().Record(flight.KindPhase, uint64(blame.PhaseDispatch), w.waveID)
			buf = buf[w.n:]
			launched = w.n
			prev = lw
			bw.Mark(blame.PhaseDispatch)
		} else if ckptDue {
			// Fully drained (prev retired above, nothing launched): capture
			// the checkpoint at the same committed-sequence boundary the
			// sequential path would.
			bw.Mark(blame.PhaseAccessWait)
			bw.Mark(blame.PhaseCommit)
			bw.Mark(blame.PhaseDispatch)
			err := c.ForceCheckpoint()
			bw.Mark(blame.PhaseCheckpoint)
			if err != nil {
				bw.End(0)
				bail(err)
				return
			}
		}
		bw.End(launched)
	}
}

// deliverWave hands a retired wave's results to their submitters. Done
// channels are buffered, so delivery never blocks the coordinator.
func deliverWave(lw *liveWave) {
	for i, a := range lw.acks {
		a.Done <- lw.res[i]
	}
}

// fillBuf admits ops from in until the window is full, the fill timeout
// lapses, or the channel closes. With block set it waits indefinitely for
// the first op (the pipeline is idle). It returns the updated buffer and
// whether in is closed.
func (p *Pipeline) fillBuf(in <-chan *AsyncOp, buf []*AsyncOp, block bool, timer *time.Timer) ([]*AsyncOp, bool) {
	if block && len(buf) == 0 {
		a, ok := <-in
		if !ok {
			return buf, true
		}
		buf = append(buf, a)
	}
	// Non-blocking drain: whatever is already queued joins the wave.
	for len(buf) < p.opts.Window {
		select {
		case a, ok := <-in:
			if !ok {
				return buf, true
			}
			buf = append(buf, a)
			continue
		default:
		}
		break
	}
	if len(buf) == 0 || len(buf) >= p.opts.Window || p.opts.FillTimeout < 0 {
		return buf, false
	}
	// Partially filled: wait out the fill timeout for stragglers.
	timer.Reset(p.opts.FillTimeout)
	for len(buf) < p.opts.Window {
		select {
		case a, ok := <-in:
			if !ok {
				stopFillTimer(timer)
				return buf, true
			}
			buf = append(buf, a)
		case <-timer.C:
			return buf, false
		}
	}
	stopFillTimer(timer)
	return buf, false
}

// stopFillTimer stops a timer and drains a pending fire, leaving it safe to
// Reset. Stop() == false means the timer already fired, but the fire can
// still be in flight on the runtime's timer goroutine — a non-blocking drain
// would miss it and leave a stale value in t.C, which the next Reset'd wait
// would consume instantly, cutting that fill window short. Blocking is safe
// here: every caller invokes stopFillTimer only when the fire since the last
// Reset has not been consumed (the <-timer.C path in fillBuf returns without
// calling it), so the pending value is ours to take.
func stopFillTimer(t *time.Timer) {
	if !t.Stop() {
		<-t.C
	}
}
