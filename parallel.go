package sdimm

import (
	"fmt"
	"sync"

	"sdimm/internal/blame"
	"sdimm/internal/durable"
	"sdimm/internal/fault"
	"sdimm/internal/flight"
	"sdimm/internal/oram"
	isdimm "sdimm/internal/sdimm"
)

// This file is the parallel execution engine for functional clusters: a
// pool of persistent per-SDIMM worker goroutines and, on top of it, a
// batched access pipeline that keeps a window of independent ORAM accesses
// in flight behind the existing fault.Transactor links.
//
// Determinism is preserved by construction, not by luck:
//
//   - Every draw from the cluster's shared RNG (leaf picks, re-homing)
//     happens on the coordinator goroutine, in logical-access order, at
//     barrier-protected points. Workers never touch shared randomness.
//   - Each worker owns exactly one SDIMM's link, buffer, and health record,
//     and drains its task queue FIFO in submission (= logical) order, so
//     every buffer observes the same operation sequence at any parallelism.
//   - Position-map updates commit on the coordinator in logical-access
//     order at the wave's merge barrier.
//   - The wave schedule depends only on the configured window, never on
//     Parallelism, which bounds worker concurrency and nothing else.
//
// A Parallelism: 1 pipeline and a Parallelism: N pipeline therefore produce
// bitwise-identical position maps, stash contents, and telemetry counters
// from the same seed — the equivalence suite in parallel_test.go proves it.

// workerPool runs tasks on persistent per-member goroutines. Tasks
// submitted to one member execute FIFO in submission order; tasks across
// members run concurrently, up to the pool's parallelism bound.
type workerPool struct {
	tasks []chan func()
	sem   chan struct{}
	wg    sync.WaitGroup
	once  sync.Once
}

// newWorkerPool starts n workers whose aggregate concurrency is capped at
// parallelism (values < 1 are clamped to 1). queue bounds how many tasks
// can be pending per worker before submit blocks.
func newWorkerPool(n, parallelism, queue int) *workerPool {
	if parallelism < 1 {
		parallelism = 1
	}
	if queue < 1 {
		queue = 1
	}
	p := &workerPool{
		tasks: make([]chan func(), n),
		sem:   make(chan struct{}, parallelism),
	}
	for i := range p.tasks {
		ch := make(chan func(), queue)
		p.tasks[i] = ch
		go func() {
			for fn := range ch {
				p.sem <- struct{}{}
				fn()
				<-p.sem
				p.wg.Done()
			}
		}()
	}
	return p
}

// submit queues fn on member w's worker. Pair with barrier.
func (p *workerPool) submit(w int, fn func()) {
	p.wg.Add(1)
	p.tasks[w] <- fn
}

// barrier blocks until every submitted task has completed. After barrier
// returns the coordinator observes all worker writes (the WaitGroup
// establishes the happens-before edge).
func (p *workerPool) barrier() { p.wg.Wait() }

// close stops the workers after the submitted tasks drain. Idempotent.
func (p *workerPool) close() {
	p.once.Do(func() {
		p.wg.Wait()
		for _, ch := range p.tasks {
			close(ch)
		}
	})
}

// BatchOp is one operation submitted to a Pipeline: a read (Write false) or
// a write of Data (padded to the cluster block size). Migrate marks the op
// as a rebalance migration step (a read journaled as KindMigrate whose
// payload is not delivered); drivers build migration batches from
// Cluster.NextMigrations and interleave them with workload ops — on the
// channel the two are indistinguishable.
type BatchOp struct {
	Addr    uint64
	Write   bool
	Data    []byte
	Migrate bool
}

// BatchResult is the outcome of one BatchOp. Data is the payload for reads
// (zeros if the address was never written); Err reports a failed access.
type BatchResult struct {
	Data []byte
	Err  error
}

// PipelineOptions size a Cluster access pipeline.
type PipelineOptions struct {
	// Window is the logical batch window: up to this many accesses are
	// scheduled into one wave. The wave schedule is a pure function of the
	// submitted operations and the window — never of Parallelism — so runs
	// that differ only in Parallelism stay bitwise identical. Default 8.
	Window int
	// Parallelism bounds how many SDIMM workers execute concurrently
	// (default = Window). 1 degenerates to sequential execution of the
	// exact same logical schedule.
	Parallelism int
}

func (o PipelineOptions) withDefaults() PipelineOptions {
	if o.Window <= 0 {
		o.Window = 8
	}
	if o.Parallelism <= 0 {
		o.Parallelism = o.Window
	}
	return o
}

// Pipeline is a batched access engine over a Cluster: it keeps up to Window
// independent accesses in flight, fanning whole accessORAM operations out
// to the owning SDIMMs' workers (the Independent protocol's unit of
// distribution) and committing all host-side state in logical-access order
// at a deterministic merge barrier.
//
// The pipeline owns the cluster's request stream while in use: do not call
// Read/Write on the underlying Cluster concurrently with Do. Close stops
// the workers.
type Pipeline struct {
	c    *Cluster
	opts PipelineOptions
	pool *workerPool

	// Wave scratch, reused across runWave calls so the steady-state batch
	// loop recycles its pipeOps (and their payload buffers) instead of
	// reallocating them every wave.
	wave []*pipeOp
	free []*pipeOp
	seen map[uint64]bool
	recs []durable.Record

	// waveN numbers the waves this pipeline has run — the wave id the blame
	// profiler and flight recorder stamp on their records.
	waveN uint64
}

// Pipeline builds a batched access pipeline over the cluster.
func (c *Cluster) Pipeline(opts PipelineOptions) *Pipeline {
	opts = opts.withDefaults()
	return &Pipeline{
		c:    c,
		opts: opts,
		pool: newWorkerPool(len(c.buffers), opts.Parallelism, 2*opts.Window),
	}
}

// Close stops the per-SDIMM workers. The pipeline must not be used after.
func (p *Pipeline) Close() { p.pool.close() }

// pipeOp is one access moving through a wave. Ops are pooled across waves:
// every field is reset by takeOp, and the slice fields keep their backing
// arrays so steady-state waves reuse them.
type pipeOp struct {
	idx     int // index into the submitted batch
	addr    uint64
	op      oram.Op
	migrate bool   // rebalance migration step (journals as KindMigrate)
	data    []byte // padded write payload (nil for reads; aliases dataBuf)

	oldG, newG uint64
	sd, sdNew  int
	keep       bool

	err      error  // first error on the access (scheduling, exchange, ack)
	skip     bool   // scheduling failed: no exchanges at all
	respBody []byte // exchange response copy (phase A, written by owner worker)
	resp     isdimm.AccessResponse
	blk      oram.Block

	appendErr []error  // per-SDIMM failed append exchange (phase B)
	appendBad [][]byte // per-SDIMM malformed append ack (phase B)

	dataBuf []byte // reusable backing store for data
}

// takeOp pops a pooled pipeOp (or allocates the pool's first ones),
// resetting every field while keeping the reusable backing arrays.
func (p *Pipeline) takeOp() *pipeOp {
	n := len(p.free)
	if n == 0 {
		return &pipeOp{}
	}
	po := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	*po = pipeOp{
		dataBuf:   po.dataBuf,
		respBody:  po.respBody[:0],
		appendErr: po.appendErr[:0],
		appendBad: po.appendBad[:0],
	}
	return po
}

// releaseWave returns the current wave's ops to the pool.
func (p *Pipeline) releaseWave() {
	for i, po := range p.wave {
		p.free = append(p.free, po)
		p.wave[i] = nil
	}
	p.wave = p.wave[:0]
}

// resizeErrs returns a zeroed error slice of length n, reusing capacity.
func resizeErrs(s []error, n int) []error {
	if cap(s) < n {
		return make([]error, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// resizeFrames returns a zeroed byte-slice slice of length n, reusing
// capacity.
func resizeFrames(s [][]byte, n int) [][]byte {
	if cap(s) < n {
		return make([][]byte, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// Do executes ops through the pipeline and returns one result per op, in
// order. Semantics match issuing the same operations through Read/Write one
// at a time, with one deliberate difference: accesses in the same wave
// observe the position map and health state as of the wave's start. A wave
// never contains two operations on the same address (the schedule breaks
// there), so per-address read/write ordering is preserved exactly.
func (p *Pipeline) Do(ops []BatchOp) []BatchResult {
	res := make([]BatchResult, len(ops))
	for start := 0; start < len(ops); {
		if p.c.crashedNow() {
			// The cluster died at a planned crash point: nothing further
			// commits, so fail the remaining operations instead of running
			// them against state that will not survive.
			for i := start; i < len(ops); i++ {
				res[i] = BatchResult{Err: durable.ErrCrashed}
			}
			return res
		}
		start += p.runWave(ops, start, res)
		if err := p.c.maybeCheckpoint(p.c.ForceCheckpoint); err != nil {
			for i := start; i < len(ops); i++ {
				res[i] = BatchResult{Err: err}
			}
			return res
		}
	}
	return res
}

// runWave schedules, executes, and commits one wave beginning at ops[start],
// returning how many operations it consumed (≥ 1).
func (p *Pipeline) runWave(ops []BatchOp, start int, res []BatchResult) int {
	c := p.c
	globalLeaves := uint64(1) << (c.levels - 1)

	// Observability taps: both are nil-safe no-ops when the cluster runs
	// without a blame collector or flight recorder, and neither draws
	// randomness nor touches shared state — attaching them cannot perturb
	// the wave schedule or the bitwise-equivalence guarantee.
	bw := c.blame.BeginWave()
	fl := c.flight.Coordinator()
	waveID := p.waveN
	p.waveN++

	// Schedule (coordinator, logical order): admit up to Window ops with
	// distinct addresses, drawing all shared randomness here. An address
	// repeat ends the wave — the second op must observe the first's commit.
	if p.seen == nil {
		p.seen = make(map[uint64]bool, p.opts.Window)
	}
	clear(p.seen)
	for i := start; i < len(ops) && len(p.wave) < p.opts.Window; i++ {
		if p.seen[ops[i].Addr] {
			break
		}
		p.seen[ops[i].Addr] = true
		p.wave = append(p.wave, p.schedule(ops[i], i, globalLeaves))
	}
	wave := p.wave
	bw.Mark(blame.PhaseSchedule)
	fl.Record(flight.KindWave, waveID, uint64(len(wave)))

	tr := c.tm.tracer
	lane := -1
	var endWave func(map[string]any)
	if tr != nil {
		lane = tr.Lane()
		sp := tr.Begin(lane, "cluster.wave", "cluster")
		endWave = sp.EndArgs
	}

	// Phase A: fan the ACCESS exchanges out to the owning SDIMMs' workers.
	for _, po := range wave {
		if po.skip {
			continue
		}
		po := po
		p.pool.submit(po.sd, func() {
			ws := bw.WorkerStart()
			mask := uint64(1)<<c.localBits - 1
			req := isdimm.AccessRequest{
				Addr:    po.addr,
				Op:      po.op,
				Data:    po.data,
				OldLeaf: po.oldG & mask,
				NewLeaf: po.newG & mask,
				Keep:    po.keep,
			}
			resp, err := c.exchange(po.sd, "access", c.accessBody(po.sd, req))
			if err == nil {
				// Exchange hands back transactor-owned scratch; a later op
				// sharing this link overwrites it, so the op keeps a copy.
				po.respBody = append(po.respBody[:0], resp...)
			}
			po.err = err
			bw.WorkerDone(blame.PhaseAccessFanout, po.sd, ws)
		})
	}
	p.pool.barrier()
	bw.Mark(blame.PhaseAccessFanout)
	fl.Record(flight.KindPhase, uint64(blame.PhaseAccessFanout), waveID)

	// Merge barrier 1 (coordinator, logical order): commit position-map
	// updates for every access whose owning buffer executed it, journal the
	// wave's committed accesses as one batch, and decode the responses. A
	// failed exchange leaves the map untouched — exactly the staged-commit
	// rule of the sequential path.
	recs := p.recs[:0]
	var committed []*pipeOp
	for _, po := range wave {
		if po.skip || po.err != nil {
			continue
		}
		c.pos.Set(po.addr, po.newG)
		// makeRecord keys the record kind off the cluster's migrating flag;
		// setting it per-op here keeps the coordinator's logical order — the
		// journal carries migrations and workload interleaved exactly as
		// scheduled.
		c.migrating = po.migrate
		recs = append(recs, c.makeRecord(po.addr, po.op, po.data))
		c.migrating = false
		committed = append(committed, po)
		resp, err := isdimm.UnmarshalResponse(po.respBody, c.blockSize)
		if err != nil {
			po.err = c.wrapErr(po.sd, "access response", err)
			continue
		}
		po.resp = resp
		po.blk = resp.Block
		po.blk.Addr = po.addr
		po.blk.Leaf = po.newG & (uint64(1)<<c.localBits - 1)
	}
	bw.Mark(blame.PhaseCommit)
	err := c.appendRecords(recs)
	p.recs = clearRecords(recs)
	bw.Mark(blame.PhaseJournal)
	if err != nil {
		// The journal append died mid-wave (a planned crash point, or real
		// I/O failure). Some records may be durable, but acknowledging any
		// result now could acknowledge an access the journal lost — fail the
		// whole wave and skip the append broadcast; recovery re-drives from
		// the journal's valid prefix.
		for _, po := range committed {
			po.err = err
		}
		// The append broadcast never runs: give it a zero-length interval so
		// the abort wave still tiles, and attribute the error handling below
		// to finalize.
		bw.Mark(blame.PhaseAppendFanout)
		for _, po := range wave {
			p.finalize(po, globalLeaves, res)
		}
		if tr != nil {
			endWave(map[string]any{"ops": len(wave), "err": true})
			tr.FreeLane(lane)
		}
		bw.End(len(wave))
		fl.Record(flight.KindPhase, uint64(blame.PhaseFinalize), waveID)
		n := len(wave)
		p.releaseWave()
		return n
	}

	// Phase B: APPEND broadcast. One task per SDIMM walks the wave in
	// logical order, so each buffer sees its appends in the same sequence
	// at any parallelism. Outcomes land in per-(op, SDIMM) slots and are
	// resolved after the barrier.
	for _, po := range wave {
		po.appendErr = resizeErrs(po.appendErr, len(c.buffers))
		po.appendBad = resizeFrames(po.appendBad, len(c.buffers))
	}
	for j := range c.buffers {
		j := j
		p.pool.submit(j, func() {
			ws := bw.WorkerStart()
			defer bw.WorkerDone(blame.PhaseAppendFanout, j, ws)
			for _, po := range wave {
				if po.skip || po.err != nil {
					continue
				}
				real := !po.keep && j == po.sdNew && !po.resp.Dummy
				if !real {
					if st := c.health[j].State(); st == fault.Failed || st == fault.Removed {
						// A dead or removed buffer has no channel; its dummy
						// is undeliverable.
						continue
					}
				}
				ack, err := c.exchange(j, "append", c.appendBody(j, po.blk, !real))
				switch {
				case err != nil:
					po.appendErr[j] = err
				case len(ack) != 1 || ack[0] != appendAck:
					po.appendBad[j] = append([]byte(nil), ack...)
				}
			}
		})
	}
	p.pool.barrier()
	bw.Mark(blame.PhaseAppendFanout)
	fl.Record(flight.KindPhase, uint64(blame.PhaseAppendFanout), waveID)

	// Merge barrier 2 (coordinator, logical order): account lost appends,
	// re-home in-flight real blocks, and finalize results.
	for _, po := range wave {
		p.finalize(po, globalLeaves, res)
	}
	if tr != nil {
		endWave(map[string]any{"ops": len(wave)})
		tr.FreeLane(lane)
	}
	bw.End(len(wave))
	fl.Record(flight.KindPhase, uint64(blame.PhaseFinalize), waveID)
	n := len(wave)
	p.releaseWave()
	return n
}

// clearRecords empties a record batch for reuse without retaining payload
// references.
func clearRecords(recs []durable.Record) []durable.Record {
	clear(recs)
	return recs[:0]
}

// schedule prepares one access: position lookup and every shared-RNG draw,
// in logical order on the coordinator.
func (p *Pipeline) schedule(op BatchOp, idx int, globalLeaves uint64) *pipeOp {
	c := p.c
	po := p.takeOp()
	po.idx, po.addr, po.op = idx, op.Addr, oram.OpRead
	po.migrate = op.Migrate
	if op.Write {
		if op.Migrate {
			po.err = fmt.Errorf("sdimm: migration op %d cannot be a write", op.Addr)
			po.skip = true
			return po
		}
		po.op = oram.OpWrite
		if len(op.Data) > c.blockSize {
			po.err = fmt.Errorf("sdimm: payload %d exceeds block size %d", len(op.Data), c.blockSize)
			po.skip = true
			return po
		}
		if cap(po.dataBuf) < c.blockSize {
			po.dataBuf = make([]byte, c.blockSize)
		}
		po.data = po.dataBuf[:c.blockSize]
		clear(po.data)
		copy(po.data, op.Data)
	}

	oldG, mapped := c.pos.Get(po.addr)
	if !mapped {
		var err error
		if oldG, err = c.pickHealthyLeaf(globalLeaves); err != nil {
			po.err, po.skip = err, true
			return po
		}
	}
	po.oldG = oldG
	po.sd = int(oldG >> c.localBits)
	if st := c.health[po.sd].State(); st == fault.Failed || st == fault.Removed {
		po.err = c.wrapErr(po.sd, "access", fault.ErrUnavailable)
		po.skip = true
		return po
	}
	newG, err := c.pickHealthyLeaf(globalLeaves)
	if err != nil {
		po.err, po.skip = err, true
		return po
	}
	po.newG = newG
	po.sdNew = int(newG >> c.localBits)
	po.keep = po.sd == po.sdNew
	return po
}

// finalize resolves one access after the append barrier: lost-append
// accounting, re-homing, malformed-ack detection, read payload extraction,
// and the cluster.* observation.
func (p *Pipeline) finalize(po *pipeOp, globalLeaves uint64, res []BatchResult) {
	c := p.c
	if po.err == nil {
		for j := range c.buffers {
			if po.appendErr[j] != nil {
				c.tm.appendsLost.Inc()
				if !po.keep && j == po.sdNew && !po.resp.Dummy {
					// The migrating block was in this exchange: re-home it
					// (coordinator-side, so its RNG draws stay in logical
					// order) instead of losing the payload.
					if rerr := c.rehome(po.addr, po.blk, j, globalLeaves); rerr != nil && po.err == nil {
						po.err = rerr
					}
				}
				continue
			}
			if po.appendBad[j] != nil && po.err == nil {
				po.err = c.wrapErr(j, "append", fmt.Errorf("sdimm: malformed append ack %x", po.appendBad[j]))
			}
		}
	}

	// Poison veto at delivery (same rule as the sequential path): the access
	// ran normally, but a payload lost to unrecoverable corruption is an
	// error, not zeros. Migration steps are exempt — their payload is never
	// delivered, and a poisoned block must still be carried off a draining
	// member.
	if po.err == nil && po.op == oram.OpRead && !po.migrate && c.poisoned[po.addr] {
		c.tm.poisonedReads.Inc()
		po.err = fmt.Errorf("sdimm: read %d: %w", po.addr, ErrUnrecoverable)
	}

	out := BatchResult{Err: po.err}
	if po.err == nil && po.op == oram.OpRead && !po.migrate {
		if po.resp.Dummy || po.resp.Block.Data == nil {
			out.Data = make([]byte, c.blockSize)
		} else {
			out.Data = append([]byte(nil), po.resp.Block.Data...)
		}
	}
	// Migration steps are accounted under cluster.migrations, not the
	// workload access counters — same split as the sequential DrainStep.
	if po.migrate {
		if po.err == nil {
			c.tm.migrations.Inc()
		}
	} else {
		c.tm.observe(po.op, po.err)
	}
	res[po.idx] = out
}
