package sdimm

import (
	"errors"
	"fmt"

	"sdimm/internal/oram"
	"sdimm/internal/rng"
	isdimm "sdimm/internal/sdimm"
	"sdimm/internal/seccomm"
)

// ClusterOptions sizes a distributed functional ORAM (the Independent
// protocol of Section III-C with real payloads and real link cryptography).
type ClusterOptions struct {
	// SDIMMs is the number of secure buffers; must be a power of two ≥ 2.
	SDIMMs int
	// Levels is the global tree height (each SDIMM holds a subtree of
	// Levels - log2(SDIMMs) levels).
	Levels int
	// BlockSize is the payload bytes per block (default 64).
	BlockSize int
	// Z is the bucket capacity (default 4).
	Z int
	// Key seeds the bucket encryption/MAC keys.
	Key []byte
	// Seed drives leaf assignment (0 uses 1).
	Seed uint64
}

// Cluster is a functional distributed ORAM: the host side (position map,
// request routing, APPEND broadcast) runs here; each SDIMM's secure buffer
// executes whole accessORAM operations against its own encrypted tree. All
// host<->buffer messages cross an (in-process) untrusted channel sealed
// with the session cryptography of the paper's Section III-B, so the full
// stack — handshake, counter-mode link encryption, bucket encryption,
// PMMAC — is exercised on every access.
type Cluster struct {
	buffers   []*isdimm.Buffer
	hostSess  []*seccomm.Session
	devSess   []*seccomm.Session
	pos       oram.PositionMap
	rnd       *rng.Source
	blockSize int
	levels    int
	localBits uint
}

// NewCluster builds a cluster: it mints a device identity per SDIMM,
// registers them with an authority, and performs the SEND_PKEY /
// RECEIVE_SECRET handshake for each.
func NewCluster(opts ClusterOptions) (*Cluster, error) {
	if opts.SDIMMs < 2 || opts.SDIMMs&(opts.SDIMMs-1) != 0 {
		return nil, errors.New("sdimm: SDIMM count must be a power of two ≥ 2")
	}
	if opts.BlockSize == 0 {
		opts.BlockSize = 64
	}
	if opts.Z == 0 {
		opts.Z = 4
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	localLevels := opts.Levels - log2int(opts.SDIMMs)
	if localLevels < 2 {
		return nil, fmt.Errorf("sdimm: %d levels too shallow for %d SDIMMs", opts.Levels, opts.SDIMMs)
	}
	geom, err := oram.NewGeometry(localLevels)
	if err != nil {
		return nil, err
	}

	auth := seccomm.NewAuthority()
	c := &Cluster{
		pos:       oram.NewSparsePosMap(),
		rnd:       rng.New(opts.Seed),
		blockSize: opts.BlockSize,
		levels:    opts.Levels,
		localBits: uint(localLevels - 1),
	}
	for i := 0; i < opts.SDIMMs; i++ {
		store, err := oram.NewMemStore(opts.Z, opts.BlockSize, append([]byte(fmt.Sprintf("sd%d|", i)), opts.Key...))
		if err != nil {
			return nil, err
		}
		engine, err := oram.NewEngine(store, nil, oram.Options{
			Geometry:       geom,
			StashCapacity:  200,
			EvictThreshold: 150,
			Rand:           rng.New(opts.Seed ^ uint64(0x5d*i+11)),
		})
		if err != nil {
			return nil, err
		}
		buf, err := isdimm.NewBuffer(fmt.Sprintf("sdimm-%d", i), engine, 64, 0.25,
			rng.New(opts.Seed^uint64(0x77*i+5)))
		if err != nil {
			return nil, err
		}
		dev, err := seccomm.NewDevice(buf.ID(), nil)
		if err != nil {
			return nil, err
		}
		auth.Register(dev)
		host, devSide, err := seccomm.Handshake(nil, dev, auth)
		if err != nil {
			return nil, err
		}
		c.buffers = append(c.buffers, buf)
		c.hostSess = append(c.hostSess, host)
		c.devSess = append(c.devSess, devSide)
	}
	return c, nil
}

func log2int(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// SDIMMs returns the number of secure buffers.
func (c *Cluster) SDIMMs() int { return len(c.buffers) }

// BlockSize returns the payload size per block.
func (c *Cluster) BlockSize() int { return c.blockSize }

// Read returns the payload of addr (zeros if never written).
func (c *Cluster) Read(addr uint64) ([]byte, error) {
	return c.access(addr, oram.OpRead, nil)
}

// Write stores up to BlockSize bytes at addr.
func (c *Cluster) Write(addr uint64, data []byte) error {
	if len(data) > c.blockSize {
		return fmt.Errorf("sdimm: payload %d exceeds block size %d", len(data), c.blockSize)
	}
	buf := make([]byte, c.blockSize)
	copy(buf, data)
	_, err := c.access(addr, oram.OpWrite, buf)
	return err
}

// access runs one distributed accessORAM: route by old leaf, execute on the
// owning SDIMM (over the encrypted link), fetch the result, and broadcast
// the APPEND that carries the block to its new home.
func (c *Cluster) access(addr uint64, op oram.Op, data []byte) ([]byte, error) {
	globalLeaves := uint64(1) << (c.levels - 1)
	oldG, ok := c.pos.Get(addr)
	if !ok {
		oldG = c.rnd.Uint64n(globalLeaves)
	}
	newG := c.rnd.Uint64n(globalLeaves)
	c.pos.Set(addr, newG)

	mask := uint64(1)<<c.localBits - 1
	sd := int(oldG >> c.localBits)
	sdNew := int(newG >> c.localBits)
	keep := sd == sdNew

	req := isdimm.AccessRequest{
		Addr:    addr,
		Op:      op,
		Data:    data,
		OldLeaf: oldG & mask,
		NewLeaf: newG & mask,
		Keep:    keep,
	}

	// ACCESS over the sealed link (reads carry a dummy payload slot).
	sealed := c.hostSess[sd].Seal(isdimm.MarshalAccess(req, c.blockSize))
	body, err := c.devSess[sd].Open(sealed)
	if err != nil {
		return nil, fmt.Errorf("sdimm: link to buffer %d: %w", sd, err)
	}
	devReq, err := isdimm.UnmarshalAccess(body, c.blockSize)
	if err != nil {
		return nil, err
	}
	if _, _, err := c.buffers[sd].HandleAccess(devReq); err != nil {
		return nil, err
	}

	// PROBE until ready (functional: immediately), then FETCH_RESULT.
	if !c.buffers[sd].HandleProbe() {
		return nil, fmt.Errorf("sdimm: buffer %d has no response", sd)
	}
	resp, err := c.buffers[sd].HandleFetchResult()
	if err != nil {
		return nil, err
	}
	respBody, err := c.hostSess[sd].Open(c.devSess[sd].Seal(isdimm.MarshalResponse(resp, c.blockSize)))
	if err != nil {
		return nil, fmt.Errorf("sdimm: response link from buffer %d: %w", sd, err)
	}
	resp, err = isdimm.UnmarshalResponse(respBody, c.blockSize)
	if err != nil {
		return nil, err
	}

	// APPEND broadcast: one sealed block-sized message to every SDIMM;
	// only the new owner receives the real block (when it migrated).
	blk := resp.Block
	blk.Addr = addr
	blk.Leaf = newG & mask
	for j := range c.buffers {
		real := !keep && j == sdNew && !resp.Dummy
		wire := isdimm.MarshalAppend(blk, !real, c.blockSize)
		opened, err := c.devSess[j].Open(c.hostSess[j].Seal(wire))
		if err != nil {
			return nil, fmt.Errorf("sdimm: append link to buffer %d: %w", j, err)
		}
		ablk, dummy, err := isdimm.UnmarshalAppend(opened, c.blockSize)
		if err != nil {
			return nil, err
		}
		if _, err := c.buffers[j].HandleAppend(ablk, dummy); err != nil {
			return nil, err
		}
	}

	if op == oram.OpRead {
		if resp.Dummy || resp.Block.Data == nil {
			return make([]byte, c.blockSize), nil
		}
		return append([]byte(nil), resp.Block.Data...), nil
	}
	return nil, nil
}

// StashLens reports each buffer's stash occupancy (monitoring).
func (c *Cluster) StashLens() []int {
	out := make([]int, len(c.buffers))
	for i, b := range c.buffers {
		out[i] = b.Engine().StashLen()
	}
	return out
}

// SplitClusterOptions sizes a functional Split-protocol ORAM.
type SplitClusterOptions struct {
	// SDIMMs is the number of shard holders (power of two ≥ 2); each holds
	// BlockSize/SDIMMs bytes of every block.
	SDIMMs int
	// Levels is the (single, shared) tree height.
	Levels int
	// BlockSize is the payload bytes per block (default 64; must divide by
	// SDIMMs).
	BlockSize int
	// Key seeds the per-shard bucket encryption/MAC keys.
	Key []byte
	// Seed drives leaf assignment (0 uses 1).
	Seed uint64
}

// SplitCluster is the functional form of the Split protocol (Section
// III-D): every block is bit-sliced across the member buffers, which hold
// shard trees of identical shape. The host owns the position map, routes
// each access to all members, and reassembles the shards. Each shard tree
// is independently encrypted and MACed (the n-MAC overhead the paper
// accepts), and the members' placements never diverge because greedy
// eviction is a pure function of (identical) stash contents.
type SplitCluster struct {
	buffers   []*isdimm.Buffer
	pos       oram.PositionMap
	rnd       *rng.Source
	blockSize int
	shard     int
	leaves    uint64
}

// NewSplitCluster builds a functional split ORAM.
func NewSplitCluster(opts SplitClusterOptions) (*SplitCluster, error) {
	if opts.SDIMMs < 2 || opts.SDIMMs&(opts.SDIMMs-1) != 0 {
		return nil, errors.New("sdimm: SDIMM count must be a power of two ≥ 2")
	}
	if opts.BlockSize == 0 {
		opts.BlockSize = 64
	}
	if opts.BlockSize%opts.SDIMMs != 0 {
		return nil, fmt.Errorf("sdimm: block size %d not divisible by %d shards", opts.BlockSize, opts.SDIMMs)
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	geom, err := oram.NewGeometry(opts.Levels)
	if err != nil {
		return nil, err
	}
	c := &SplitCluster{
		pos:       oram.NewSparsePosMap(),
		rnd:       rng.New(opts.Seed ^ 0x59117),
		blockSize: opts.BlockSize,
		shard:     opts.BlockSize / opts.SDIMMs,
		leaves:    geom.Leaves(),
	}
	for i := 0; i < opts.SDIMMs; i++ {
		store, err := oram.NewMemStore(4, c.shard, append([]byte(fmt.Sprintf("shard%d|", i)), opts.Key...))
		if err != nil {
			return nil, err
		}
		engine, err := oram.NewEngine(store, nil, oram.Options{
			Geometry:       geom,
			StashCapacity:  200,
			EvictThreshold: 150,
			// All shards must evolve in lockstep: the host directs
			// eviction with shared randomness (below), so the engines'
			// own background eviction stays off.
			DisableAutoDrain: true,
			Rand:             rng.New(opts.Seed ^ 0x3b1d), // same stream: lockstep
		})
		if err != nil {
			return nil, err
		}
		buf, err := isdimm.NewBuffer(fmt.Sprintf("shard-%d", i), engine, 64, 0,
			rng.New(opts.Seed^uint64(0x99*i+1)))
		if err != nil {
			return nil, err
		}
		c.buffers = append(c.buffers, buf)
	}
	return c, nil
}

// Read returns the payload of addr, reassembled from all shards.
func (c *SplitCluster) Read(addr uint64) ([]byte, error) {
	return c.access(addr, oram.OpRead, nil)
}

// Write stores up to BlockSize bytes at addr, splitting it across shards.
func (c *SplitCluster) Write(addr uint64, data []byte) error {
	if len(data) > c.blockSize {
		return fmt.Errorf("sdimm: payload %d exceeds block size %d", len(data), c.blockSize)
	}
	buf := make([]byte, c.blockSize)
	copy(buf, data)
	_, err := c.access(addr, oram.OpWrite, buf)
	return err
}

func (c *SplitCluster) access(addr uint64, op oram.Op, data []byte) ([]byte, error) {
	oldLeaf, ok := c.pos.Get(addr)
	if !ok {
		oldLeaf = c.rnd.Uint64n(c.leaves)
	}
	newLeaf := c.rnd.Uint64n(c.leaves)
	c.pos.Set(addr, newLeaf)

	out := make([]byte, c.blockSize)
	for i, b := range c.buffers {
		var shard []byte
		if op == oram.OpWrite {
			shard = data[i*c.shard : (i+1)*c.shard]
		}
		blk, _, err := b.ShardAccess(isdimm.AccessRequest{
			Addr: addr, Op: op, Data: shard, OldLeaf: oldLeaf, NewLeaf: newLeaf,
		})
		if err != nil {
			return nil, fmt.Errorf("sdimm: shard %d: %w", i, err)
		}
		if op == oram.OpRead && blk.Data != nil {
			copy(out[i*c.shard:], blk.Data)
		}
	}
	// Host-directed background eviction, same leaf to every shard.
	for n := 0; n < 8 && c.buffers[0].Engine().NeedsDrain(); n++ {
		leaf := c.rnd.Uint64n(c.leaves)
		for i, b := range c.buffers {
			if err := b.EvictLocal(leaf); err != nil {
				return nil, fmt.Errorf("sdimm: shard %d eviction: %w", i, err)
			}
		}
	}
	if op == oram.OpRead {
		return out, nil
	}
	return nil, nil
}

// StashLens reports each shard's stash occupancy; the Split invariant is
// that they are always identical.
func (c *SplitCluster) StashLens() []int {
	out := make([]int, len(c.buffers))
	for i, b := range c.buffers {
		out[i] = b.Engine().StashLen()
	}
	return out
}
