package sdimm

import (
	"errors"
	"fmt"
	"strconv"

	"sdimm/internal/blame"
	"sdimm/internal/durable"
	"sdimm/internal/fault"
	"sdimm/internal/flight"
	"sdimm/internal/oram"
	"sdimm/internal/rng"
	isdimm "sdimm/internal/sdimm"
	"sdimm/internal/seccomm"
	"sdimm/internal/telemetry"
)

// ClusterOptions sizes a distributed functional ORAM (the Independent
// protocol of Section III-C with real payloads and real link cryptography).
type ClusterOptions struct {
	// SDIMMs is the number of secure buffers; must be a power of two ≥ 2.
	SDIMMs int
	// Levels is the global tree height (each SDIMM holds a subtree of
	// Levels - log2(SDIMMs) levels).
	Levels int
	// BlockSize is the payload bytes per block (default 64).
	BlockSize int
	// Z is the bucket capacity (default 4).
	Z int
	// RingFlushInterval, when > 0, runs every member's engine in
	// ring-eviction mode: reads lift only the target block off the path and
	// writeback is deferred to a deterministic reverse-lexicographic
	// eviction pointer that flushes one path per RingFlushInterval accesses
	// (see DESIGN.md, Backends). 0 keeps the Path ORAM engines. Requires
	// Z ≥ 2 (each written bucket reserves dummy slots).
	RingFlushInterval int
	// Key seeds the bucket encryption/MAC keys.
	Key []byte
	// Seed drives leaf assignment (0 uses 1).
	Seed uint64
	// Faults optionally injects deterministic channel faults between
	// seccomm Seal and Open (nil = perfect links).
	Faults *fault.Injector
	// Retry bounds per-exchange retransmission and backoff (zero value =
	// defaults: 8 attempts, 50µs base backoff, 5ms cap).
	Retry fault.RetryPolicy
	// DegradeAfter marks a buffer Degraded after this many consecutive
	// failed exchanges (default 3).
	DegradeAfter int
	// LinkTap, when set, observes every frame put on a link before fault
	// injection (attempt 0 = original transmission, >0 = retransmission).
	// The chaos harness uses it to assert retries never change the
	// observable traffic.
	LinkTap func(sd int, dir fault.Direction, attempt int, frame []byte)
	// Telemetry, when set, receives cluster.* access counters, fault.*
	// link-recovery counters, seccomm.* crypto counters, and per-SDIMM
	// health-state gauges with transition counts.
	Telemetry *telemetry.Registry
	// Tracer, when set, records one span per access plus instants for
	// re-homing and health transitions (wall-clock microseconds — the
	// functional cluster has no simulated clock).
	Tracer *telemetry.Tracer
	// Blame, when set, receives per-wave phase intervals and per-SDIMM
	// worker busy spans from the batched pipeline, feeding the
	// critical-path profiler and its serialization ledger (see
	// internal/blame). Attaching a collector never changes cluster
	// behaviour — it draws no randomness and touches no shared state.
	Blame *blame.Collector
	// Flight, when set, is the always-on flight recorder: pipeline wave and
	// phase edges land on the coordinator ring, health transitions and
	// link retry/ARQ activity on the owning SDIMM's ring. Recording is
	// allocation-free; harnesses dump the rings when a check goes red.
	Flight *flight.Recorder
	// Durability, when set, gives the cluster crash consistency: every
	// committed access is journaled, state is checkpointed every Interval
	// accesses, and RecoverCluster can rebuild the cluster from the state
	// directory after a crash (see DESIGN.md, Durability & crash recovery).
	Durability *DurabilityOptions
}

// withDefaults normalizes the option fields that have defaults, so every
// consumer (construction, fingerprinting, recovery) sees the same values.
func (o ClusterOptions) withDefaults() ClusterOptions {
	if o.BlockSize == 0 {
		o.BlockSize = 64
	}
	if o.Z == 0 {
		o.Z = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// clusterTelemetry bundles the handles a functional cluster updates. All
// handles come from a (possibly nil) registry, so they are always valid —
// with no registry they are unregistered orphans and updates are harmless.
type clusterTelemetry struct {
	accesses, reads, writes, errors *telemetry.Counter
	rehomes, rehomeFailures         *telemetry.Counter
	rehomeAttempts                  *telemetry.Counter
	appendsLost                     *telemetry.Counter
	migrations                      *telemetry.Counter
	reconstructions                 *telemetry.Counter
	checkpoints                     *telemetry.Counter
	replayed                        *telemetry.Counter
	scrubScanned, scrubRepaired     *telemetry.Counter
	scrubUnrecoverable              *telemetry.Counter
	poisonedReads                   *telemetry.Counter
	tracer                          *telemetry.Tracer
}

func newClusterTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) clusterTelemetry {
	return clusterTelemetry{
		accesses:           reg.Counter("cluster.accesses"),
		reads:              reg.Counter("cluster.reads"),
		writes:             reg.Counter("cluster.writes"),
		errors:             reg.Counter("cluster.errors"),
		rehomes:            reg.Counter("cluster.rehomes"),
		rehomeFailures:     reg.Counter("cluster.rehome_failures"),
		rehomeAttempts:     reg.Counter("cluster.rehome_attempts"),
		appendsLost:        reg.Counter("cluster.appends_lost"),
		migrations:         reg.Counter("cluster.migrations"),
		reconstructions:    reg.Counter("cluster.reconstructions"),
		checkpoints:        reg.Counter("cluster.checkpoints"),
		replayed:           reg.Counter("cluster.recovery.replayed"),
		scrubScanned:       reg.Counter("cluster.scrub.scanned"),
		scrubRepaired:      reg.Counter("cluster.scrub.repaired"),
		scrubUnrecoverable: reg.Counter("cluster.scrub.unrecoverable"),
		poisonedReads:      reg.Counter("cluster.poisoned_reads"),
		tracer:             tr,
	}
}

// observe records one completed top-level access.
func (t *clusterTelemetry) observe(op oram.Op, err error) {
	t.accesses.Inc()
	if op == oram.OpRead {
		t.reads.Inc()
	} else {
		t.writes.Inc()
	}
	if err != nil {
		t.errors.Inc()
	}
}

// watchHealth publishes h's state as a per-SDIMM gauge (values: 0 healthy,
// 1 degraded, 2 failed, 3 recovering, 4 draining, 5 removed) and counts
// every transition edge under
// fault.health.transitions{from=...,to=...}. A flight ring, when given,
// additionally records every transition edge in the member's ring buffer.
// With no registry, tracer, or ring it leaves the Health unobserved.
func watchHealth(reg *telemetry.Registry, tr *telemetry.Tracer, fr *flight.Ring, h *fault.Health, idx int) {
	if reg == nil && tr == nil && fr == nil {
		return
	}
	g := reg.Gauge("fault.health.state", "sdimm", strconv.Itoa(idx))
	g.Set(int64(fault.Healthy))
	h.SetObserver(func(from, to fault.State) {
		g.Set(int64(to))
		reg.Counter("fault.health.transitions", "from", from.String(), "to", to.String()).Inc()
		fr.Record(flight.KindHealth, uint64(from), uint64(to))
		if tr != nil {
			tr.Instant(0, "health."+to.String(), "fault",
				map[string]any{"sdimm": idx, "from": from.String()})
		}
	})
}

// flightKind maps a transactor recovery event onto its flight-recorder
// event kind, so each member's ring shows retry/ARQ activity inline with
// that member's phase edges and health transitions.
func flightKind(ev fault.NotifyEvent) flight.Kind {
	switch ev {
	case fault.NotifyRetry:
		return flight.KindRetry
	case fault.NotifyRetransmit:
		return flight.KindRetransmit
	case fault.NotifyResync:
		return flight.KindResync
	default:
		return flight.KindAbandon
	}
}

// Command kinds for the 1-byte envelope prefixed to every sealed body, so
// the secure buffer can dispatch without relying on message length.
const (
	msgKindAccess byte = 0x01
	msgKindAppend byte = 0x02
	appendAck     byte = 0x06
)

// appendAckBody is the shared APPEND acknowledgement body. It is read-only
// (the transactor copies it into the seal buffer), so one instance serves
// every SDIMM.
var appendAckBody = []byte{appendAck}

// Cluster is a functional distributed ORAM: the host side (position map,
// request routing, APPEND broadcast) runs here; each SDIMM's secure buffer
// executes whole accessORAM operations against its own encrypted tree. All
// host<->buffer messages cross an (in-process) untrusted channel sealed
// with the session cryptography of the paper's Section III-B — and, unlike
// the seed implementation, that channel is allowed to fail: every exchange
// runs through a fault.Transactor that retries transient faults with
// byte-identical retransmissions, position-map updates commit only after
// the owning buffer has executed the access, and per-SDIMM health tracking
// degrades buffers instead of bricking addresses.
type Cluster struct {
	buffers   []*isdimm.Buffer
	links     []*fault.Transactor
	health    []*fault.Health
	pos       oram.PositionMap
	rnd       *rng.Source
	blockSize int
	levels    int
	localBits uint
	tm        clusterTelemetry
	blame     *blame.Collector
	flight    *flight.Recorder
	durableState

	// mkMember builds a fresh incarnation of slot i (store, engine, buffer,
	// device identity, handshake, transactor) and installs it in place. Set
	// by buildCluster; used by joins and by checkpoint restore when the
	// checkpointed incarnation differs from the founding one.
	mkMember func(i int, inc uint64) error
	// elig is pickHealthyLeaf's reusable eligible-member scratch.
	elig []int

	// Per-SDIMM reusable message scratch. Commands to (and the serve
	// response for) SDIMM i are only ever built on the goroutine currently
	// driving link i — the coordinator on the sequential path, worker i
	// under a Pipeline — so per-SDIMM buffers are race-free by the same
	// argument as the links themselves.
	cmdBufs   [][]byte // kind byte + marshalled command body
	serveBufs [][]byte // device-side response body
	writeBuf  []byte   // Write's zero-padded payload staging
}

// NewCluster builds a cluster: it mints a device identity per SDIMM,
// registers them with an authority, and performs the SEND_PKEY /
// RECEIVE_SECRET handshake for each. With Durability set the state
// directory must be empty (recovering an existing one is RecoverCluster's
// job — silently reinitializing it would clobber recoverable state) and a
// genesis checkpoint is written before the cluster accepts traffic.
func NewCluster(opts ClusterOptions) (*Cluster, error) {
	opts = opts.withDefaults()
	c, err := buildCluster(opts)
	if err != nil {
		return nil, err
	}
	if opts.Durability != nil {
		if err := c.attachDurability(opts.Durability, independentFingerprint(opts), opts.Key); err != nil {
			return nil, err
		}
		if c.dur.HasState() {
			return nil, fmt.Errorf("sdimm: state directory %s already holds checkpoints; use RecoverCluster", opts.Durability.Dir)
		}
		if err := c.ForceCheckpoint(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// newCluster builds the cluster core (buffers, links, health) with no
// durability attached. opts must already be defaulted.
func buildCluster(opts ClusterOptions) (*Cluster, error) {
	if opts.SDIMMs < 2 || opts.SDIMMs&(opts.SDIMMs-1) != 0 {
		return nil, errors.New("sdimm: SDIMM count must be a power of two ≥ 2")
	}
	localLevels := opts.Levels - log2int(opts.SDIMMs)
	if localLevels < 2 {
		return nil, fmt.Errorf("sdimm: %d levels too shallow for %d SDIMMs", opts.Levels, opts.SDIMMs)
	}
	geom, err := oram.NewGeometry(localLevels)
	if err != nil {
		return nil, err
	}

	auth := seccomm.NewAuthority()
	c := &Cluster{
		// Sharded so the pipeline's workers can commit positions for distinct
		// addresses concurrently; the sequential path sees an ordinary map.
		pos:       oram.NewShardedPosMap(4 * opts.SDIMMs),
		rnd:       rng.New(opts.Seed),
		blockSize: opts.BlockSize,
		levels:    opts.Levels,
		localBits: uint(localLevels - 1),
		tm:        newClusterTelemetry(opts.Telemetry, opts.Tracer),
		blame:     opts.Blame,
		flight:    opts.Flight,
	}
	c.poisoned = make(map[uint64]bool)
	c.cmdBufs = make([][]byte, opts.SDIMMs)
	c.serveBufs = make([][]byte, opts.SDIMMs)
	// Link-recovery and crypto counters aggregate across all SDIMMs, so the
	// registry totals line up with the sums over Health().
	var linkMetrics *fault.LinkMetrics
	var commMetrics *seccomm.Metrics
	if opts.Telemetry != nil {
		linkMetrics = fault.NewLinkMetrics(opts.Telemetry)
		commMetrics = seccomm.NewMetrics(opts.Telemetry)
		if opts.Faults != nil {
			opts.Faults.EnableTelemetry(opts.Telemetry)
		}
	}
	for i := 0; i < opts.SDIMMs; i++ {
		store, err := oram.NewMemStore(opts.Z, opts.BlockSize, append([]byte(fmt.Sprintf("sd%d|", i)), opts.Key...))
		if err != nil {
			return nil, err
		}
		engine, err := oram.NewEngine(store, nil, oram.Options{
			Geometry:          geom,
			StashCapacity:     200,
			EvictThreshold:    150,
			RingFlushInterval: opts.RingFlushInterval,
			Rand:              rng.New(opts.Seed ^ uint64(0x5d*i+11)),
		})
		if err != nil {
			return nil, err
		}
		buf, err := isdimm.NewBuffer(fmt.Sprintf("sdimm-%d", i), engine, 64, 0.25,
			rng.New(opts.Seed^uint64(0x77*i+5)))
		if err != nil {
			return nil, err
		}
		dev, err := seccomm.NewDevice(buf.ID(), nil)
		if err != nil {
			return nil, err
		}
		auth.Register(dev)
		host, devSide, err := seccomm.Handshake(nil, dev, auth)
		if err != nil {
			return nil, err
		}
		host.SetMetrics(commMetrics)
		devSide.SetMetrics(commMetrics)
		c.buffers = append(c.buffers, buf)
		h := fault.NewHealth(opts.DegradeAfter, 0)
		watchHealth(opts.Telemetry, opts.Tracer, opts.Flight.Ring(i), h, i)
		c.health = append(c.health, h)

		var link fault.Link = fault.Perfect{}
		if opts.Faults != nil {
			link = opts.Faults.Link(i)
		}
		sd := i
		tr := &fault.Transactor{
			Host:    host,
			Dev:     devSide,
			Link:    link,
			Serve:   func(body []byte) ([]byte, error) { return c.serve(sd, body) },
			Retry:   opts.Retry,
			Metrics: linkMetrics,
		}
		if opts.LinkTap != nil {
			tap := opts.LinkTap
			tr.Tap = func(dir fault.Direction, attempt int, frame []byte) { tap(sd, dir, attempt, frame) }
		}
		if fr := opts.Flight.Ring(sd); fr != nil {
			tr.Notify = func(ev fault.NotifyEvent, n int) { fr.Record(flightKind(ev), uint64(n), 0) }
		}
		c.links = append(c.links, tr)
	}
	c.initElastic(opts.SDIMMs)

	// Member factory for post-founding incarnations (joins and restores).
	// Store keys and RNG seeds derive from (slot, incarnation) so a joined
	// member never aliases state with any predecessor in the same slot, and
	// reconstruction is deterministic from the options alone. The founding
	// loop above keeps its original derivations untouched — incarnation 0
	// always reconstructs bit-identically.
	c.mkMember = func(i int, inc uint64) error {
		if i < 0 || i >= len(c.buffers) {
			return fmt.Errorf("sdimm: member slot %d out of range", i)
		}
		stream := int(inc)<<8 | i
		store, err := oram.NewMemStore(opts.Z, opts.BlockSize, append([]byte(fmt.Sprintf("sd%d.%d|", i, inc)), opts.Key...))
		if err != nil {
			return err
		}
		engine, err := oram.NewEngine(store, nil, oram.Options{
			Geometry:          geom,
			StashCapacity:     200,
			EvictThreshold:    150,
			RingFlushInterval: opts.RingFlushInterval,
			Rand:              rng.Stream(opts.Seed, "elastic.engine", stream),
		})
		if err != nil {
			return err
		}
		buf, err := isdimm.NewBuffer(fmt.Sprintf("sdimm-%d.%d", i, inc), engine, 64, 0.25,
			rng.Stream(opts.Seed, "elastic.buffer", stream))
		if err != nil {
			return err
		}
		dev, err := seccomm.NewDevice(buf.ID(), nil)
		if err != nil {
			return err
		}
		auth.Register(dev)
		host, devSide, err := seccomm.Handshake(nil, dev, auth)
		if err != nil {
			return err
		}
		host.SetMetrics(commMetrics)
		devSide.SetMetrics(commMetrics)
		var link fault.Link = fault.Perfect{}
		if opts.Faults != nil {
			link = opts.Faults.Link(i)
		}
		sd := i
		tr := &fault.Transactor{
			Host:    host,
			Dev:     devSide,
			Link:    link,
			Serve:   func(body []byte) ([]byte, error) { return c.serve(sd, body) },
			Retry:   opts.Retry,
			Metrics: linkMetrics,
		}
		if opts.LinkTap != nil {
			tap := opts.LinkTap
			tr.Tap = func(dir fault.Direction, attempt int, frame []byte) { tap(sd, dir, attempt, frame) }
		}
		if fr := opts.Flight.Ring(sd); fr != nil {
			tr.Notify = func(ev fault.NotifyEvent, n int) { fr.Record(flightKind(ev), uint64(n), 0) }
		}
		c.buffers[i] = buf
		c.links[i] = tr
		return nil
	}
	return c, nil
}

func log2int(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// SDIMMs returns the number of secure buffers.
func (c *Cluster) SDIMMs() int { return len(c.buffers) }

// BlockSize returns the payload size per block.
func (c *Cluster) BlockSize() int { return c.blockSize }

// Read returns the payload of addr (zeros if never written). A read of an
// address lost to unrecoverable corruption returns ErrUnrecoverable.
func (c *Cluster) Read(addr uint64) ([]byte, error) {
	out, err := c.tracedAccess(addr, oram.OpRead, nil)
	c.tm.observe(oram.OpRead, err)
	if err == nil {
		err = c.maybeCheckpoint(c.ForceCheckpoint)
	}
	return out, err
}

// Write stores up to BlockSize bytes at addr.
func (c *Cluster) Write(addr uint64, data []byte) error {
	if len(data) > c.blockSize {
		return fmt.Errorf("sdimm: payload %d exceeds block size %d", len(data), c.blockSize)
	}
	if cap(c.writeBuf) < c.blockSize {
		c.writeBuf = make([]byte, c.blockSize)
	}
	buf := c.writeBuf[:c.blockSize]
	clear(buf)
	copy(buf, data)
	_, err := c.tracedAccess(addr, oram.OpWrite, buf)
	c.tm.observe(oram.OpWrite, err)
	if err == nil {
		err = c.maybeCheckpoint(c.ForceCheckpoint)
	}
	return err
}

// Close releases the durability manager (no-op without one).
func (c *Cluster) Close() error {
	if c.dur != nil {
		return c.dur.Close()
	}
	return nil
}

// tracedAccess wraps access in one tracer span per top-level operation.
func (c *Cluster) tracedAccess(addr uint64, op oram.Op, data []byte) ([]byte, error) {
	tr := c.tm.tracer
	if tr == nil {
		return c.access(addr, op, data)
	}
	lane := tr.Lane()
	sp := tr.Begin(lane, "cluster.access", "cluster")
	out, err := c.access(addr, op, data)
	sp.EndArgs(map[string]any{"addr": addr, "write": op == oram.OpWrite, "err": err != nil})
	tr.FreeLane(lane)
	return out, err
}

// serve is the device-side command dispatcher: it runs inside the
// fault.Transactor with an opened (authenticated, decrypted) body, executes
// the buffer operation, and returns the response body to seal. The
// Transactor guarantees it runs at most once per exchange regardless of
// link faults.
func (c *Cluster) serve(sd int, body []byte) ([]byte, error) {
	if len(body) == 0 {
		return nil, fmt.Errorf("sdimm %d: empty command body", sd)
	}
	kind, payload := body[0], body[1:]
	switch kind {
	case msgKindAccess:
		// Zero-copy decode: req.Data aliases the opened frame, which stays
		// valid through HandleAccess (the engine copies write payloads in).
		req, err := isdimm.UnmarshalAccessView(payload, c.blockSize)
		if err != nil {
			return nil, err
		}
		if _, _, err := c.buffers[sd].HandleAccess(req); err != nil {
			return nil, err
		}
		// PROBE until ready (functional: immediately), then FETCH_RESULT.
		if !c.buffers[sd].HandleProbe() {
			return nil, fmt.Errorf("sdimm: buffer %d has no response", sd)
		}
		resp, err := c.buffers[sd].HandleFetchResult()
		if err != nil {
			return nil, err
		}
		// The body is sealed (copied) by the transactor before serve's next
		// invocation on this SDIMM, so per-SDIMM scratch is safe to hand out.
		c.serveBufs[sd] = isdimm.AppendResponse(c.serveBufs[sd][:0], resp, c.blockSize)
		return c.serveBufs[sd], nil
	case msgKindAppend:
		blk, dummy, err := isdimm.UnmarshalAppendView(payload, c.blockSize)
		if err != nil {
			return nil, err
		}
		if _, err := c.buffers[sd].HandleAppend(blk, dummy); err != nil {
			return nil, err
		}
		return appendAckBody, nil
	}
	return nil, fmt.Errorf("sdimm %d: unknown command kind %#02x", sd, kind)
}

// accessBody marshals an ACCESS command into SDIMM sd's command scratch.
// The body is consumed (copied into the link's seal buffer) before the next
// command to the same SDIMM is built.
func (c *Cluster) accessBody(sd int, req isdimm.AccessRequest) []byte {
	b := append(c.cmdBufs[sd][:0], msgKindAccess)
	b = isdimm.AppendAccess(b, req, c.blockSize)
	c.cmdBufs[sd] = b
	return b
}

// appendBody marshals an APPEND command into SDIMM sd's command scratch.
func (c *Cluster) appendBody(sd int, blk oram.Block, dummy bool) []byte {
	b := append(c.cmdBufs[sd][:0], msgKindAppend)
	b = isdimm.AppendAppend(b, blk, dummy, c.blockSize)
	c.cmdBufs[sd] = b
	return b
}

// exchange runs one sealed command/response transaction with buffer sd and
// keeps its health record current. Every error leaving here carries the
// buffer's index and ID. The response is the transactor's scratch: valid
// only until the next exchange on the same SDIMM.
func (c *Cluster) exchange(sd int, op string, body []byte) ([]byte, error) {
	resp, err := c.links[sd].Exchange(body)
	if err != nil {
		c.health[sd].Failure(err)
		return nil, c.wrapErr(sd, op, err)
	}
	c.health[sd].Success()
	return resp, nil
}

func (c *Cluster) wrapErr(sd int, op string, err error) error {
	return &fault.SDIMMError{Index: sd, ID: c.buffers[sd].ID(), Op: op, Err: err}
}

// ErrNoHealthySDIMM reports that no cluster member is eligible to receive
// block placements: every SDIMM is failed, draining, or removed.
var ErrNoHealthySDIMM = errors.New("sdimm: no healthy SDIMM available for placement")

// pickHealthyLeaf draws a uniformly random global leaf whose owning SDIMM is
// eligible for placement — not failed, not draining, not removed — so blocks
// are never placed on a dead buffer and a draining member's population only
// shrinks. Eligible members are enumerated once and a single draw spans
// (eligible × local leaves): unlike the old bounded-retry loop this cannot
// spuriously fail while healthy SDIMMs remain, and with every member
// eligible it consumes exactly the same single Uint64n(globalLeaves) draw
// (the eligible count is a power of two), so seeded histories are unchanged.
// A failed/draining/removed SDIMM is public knowledge on the channel, so the
// skew is not an access-pattern leak.
func (c *Cluster) pickHealthyLeaf(globalLeaves uint64) (uint64, error) {
	return c.pickLeafStates(func(i int) fault.State { return c.health[i].State() },
		len(c.health), globalLeaves)
}

// pickLeafStates is pickHealthyLeaf's core with the health source abstracted:
// the sequential path reads the live records, the pipeline a coordinator
// snapshot (see Pipeline.pickLeafSnap). Both consume RNG draws identically
// for identical state views, which is what keeps seeded histories aligned.
func (c *Cluster) pickLeafStates(state func(i int) fault.State, n int, globalLeaves uint64) (uint64, error) {
	c.elig = c.elig[:0]
	for i := 0; i < n; i++ {
		switch state(i) {
		case fault.Failed, fault.Draining, fault.Removed:
		default:
			c.elig = append(c.elig, i)
		}
	}
	if len(c.elig) == 0 {
		return 0, ErrNoHealthySDIMM
	}
	x := c.rnd.Uint64n(uint64(len(c.elig)) << c.localBits)
	mask := uint64(1)<<c.localBits - 1
	return uint64(c.elig[x>>c.localBits])<<c.localBits | (x & mask), nil
}

// access runs one distributed accessORAM: route by old leaf, execute on the
// owning SDIMM (over the encrypted, possibly faulty link), fetch the
// result, and broadcast the APPEND that carries the block to its new home.
//
// Recovery semantics: the position map is committed only AFTER the owning
// buffer has executed the access. A fault before that point (however the
// retries end) leaves host and buffers exactly as they were, so the
// address stays readable — the seed's map-first ordering permanently
// bricked the address on any link error.
func (c *Cluster) access(addr uint64, op oram.Op, data []byte) ([]byte, error) {
	if c.crashedNow() {
		return nil, durable.ErrCrashed
	}
	globalLeaves := uint64(1) << (c.levels - 1)
	oldG, mapped := c.pos.Get(addr)
	if !mapped {
		// The block exists nowhere yet; route the dummy access to a live
		// buffer so a dead one cannot deny fresh writes.
		var err error
		if oldG, err = c.pickHealthyLeaf(globalLeaves); err != nil {
			return nil, err
		}
	}
	sd := int(oldG >> c.localBits)
	if st := c.health[sd].State(); st == fault.Failed || st == fault.Removed {
		return nil, c.wrapErr(sd, "access", fault.ErrUnavailable)
	}
	newG, err := c.pickHealthyLeaf(globalLeaves)
	if err != nil {
		return nil, err
	}

	mask := uint64(1)<<c.localBits - 1
	sdNew := int(newG >> c.localBits)
	keep := sd == sdNew

	req := isdimm.AccessRequest{
		Addr:    addr,
		Op:      op,
		Data:    data,
		OldLeaf: oldG & mask,
		NewLeaf: newG & mask,
		Keep:    keep,
	}

	// ACCESS over the sealed link (reads carry a dummy payload slot).
	respBody, err := c.exchange(sd, "access", c.accessBody(sd, req))
	if err != nil {
		// The buffer never executed the access (or its result is
		// unreachable): the map still holds oldG, nothing desynchronized.
		return nil, err
	}
	// Staged commit point: the buffer has executed the access, so the
	// block now lives under newG (locally when kept, or in flight in the
	// response). Later append failures cannot move it again. The journal
	// record lands here — a crash before this append means the access never
	// happened; after it, recovery replays it.
	c.pos.Set(addr, newG)
	if err := c.commitRecord(addr, op, data); err != nil {
		return nil, err
	}

	resp, err := isdimm.UnmarshalResponse(respBody, c.blockSize)
	if err != nil {
		return nil, c.wrapErr(sd, "access response", err)
	}

	// APPEND broadcast: one sealed block-sized message to every live SDIMM;
	// only the new owner receives the real block (when it migrated).
	blk := resp.Block
	blk.Addr = addr
	blk.Leaf = newG & mask
	for j := range c.buffers {
		real := !keep && j == sdNew && !resp.Dummy
		if !real {
			if st := c.health[j].State(); st == fault.Failed || st == fault.Removed {
				// A dead or removed buffer has no channel; its dummy is
				// undeliverable. A draining member still receives dummies —
				// it is live, and skipping it would change the traffic shape.
				continue
			}
		}
		ack, err := c.exchange(j, "append", c.appendBody(j, blk, !real))
		if err != nil {
			c.tm.appendsLost.Inc()
			if real {
				// The migrating block was in this exchange. Rather than
				// losing the payload, re-home it to a different healthy
				// SDIMM and repoint the position map.
				if rerr := c.rehome(addr, blk, j, globalLeaves); rerr != nil {
					return nil, rerr
				}
			}
			// A lost dummy costs nothing beyond the health record.
			continue
		}
		if len(ack) != 1 || ack[0] != appendAck {
			return nil, c.wrapErr(j, "append", fmt.Errorf("sdimm: malformed append ack %x", ack))
		}
	}

	if op == oram.OpRead {
		// Poison veto at delivery: the access itself ran normally (keeping
		// every RNG draw and placement identical to an uncorrupted run), but
		// a payload lost to unrecoverable corruption must not be served as
		// zeros. Replay is exempt — it re-executes history, and the poisoned
		// result was never delivered anyway. Migration steps are exempt too:
		// a poisoned block must still be carried off a draining member (its
		// payload is never delivered to a caller), and vetoing would abort
		// the drain.
		if !c.replaying && !c.migrating && c.poisoned[addr] {
			c.tm.poisonedReads.Inc()
			return nil, fmt.Errorf("sdimm: read %d: %w", addr, ErrUnrecoverable)
		}
		if resp.Dummy || resp.Block.Data == nil {
			return make([]byte, c.blockSize), nil
		}
		return append([]byte(nil), resp.Block.Data...), nil
	}
	return nil, nil
}

// rehome places an in-flight real block on a healthy SDIMM other than the
// one whose append just failed, then repoints the position map. It runs
// only after an append was abandoned — a channel-visible event — so the
// extra exchange leaks nothing the failure itself did not.
func (c *Cluster) rehome(addr uint64, blk oram.Block, exclude int, globalLeaves uint64) error {
	c.tm.rehomes.Inc()
	if tr := c.tm.tracer; tr != nil {
		tr.Instant(0, "cluster.rehome", "cluster", map[string]any{"addr": addr, "exclude": exclude})
	}
	var lastErr error
	for try := 0; try < 8*len(c.buffers); try++ {
		g, err := c.pickHealthyLeaf(globalLeaves)
		if err != nil {
			return err
		}
		sd := int(g >> c.localBits)
		if sd == exclude {
			continue
		}
		nb := blk
		nb.Leaf = g & (uint64(1)<<c.localBits - 1)
		c.tm.rehomeAttempts.Inc()
		ack, err := c.exchange(sd, "rehome append", c.appendBody(sd, nb, false))
		if err != nil {
			lastErr = err
			continue
		}
		if len(ack) != 1 || ack[0] != appendAck {
			return c.wrapErr(sd, "rehome append", fmt.Errorf("sdimm: malformed append ack %x", ack))
		}
		c.pos.Set(addr, g)
		return nil
	}
	if lastErr == nil {
		lastErr = errors.New("sdimm: no alternative SDIMM for in-flight block")
	}
	c.tm.rehomeFailures.Inc()
	return fmt.Errorf("sdimm: re-homing block %d failed: %w", addr, lastErr)
}

// Positions snapshots the position map as addr → global leaf. The
// determinism-equivalence harness compares these across engines.
func (c *Cluster) Positions() map[uint64]uint64 {
	out := make(map[uint64]uint64, c.pos.Len())
	c.pos.Each(func(a, l uint64) { out[a] = l })
	return out
}

// StashLens reports each buffer's stash occupancy (monitoring).
func (c *Cluster) StashLens() []int {
	out := make([]int, len(c.buffers))
	for i, b := range c.buffers {
		out[i] = b.Engine().StashLen()
	}
	return out
}

// BucketWrites sums physical bucket writes across every member's store.
// This is the on-DIMM write-traffic metric the ring-eviction benchmark
// gates on: ring engines defer path writeback to the eviction pointer, so
// the count grows much slower than under Path ORAM at the same workload.
func (c *Cluster) BucketWrites() uint64 {
	var n uint64
	for _, b := range c.buffers {
		if ms, ok := b.Engine().Store().(*oram.MemStore); ok {
			n += ms.Writes()
		}
	}
	return n
}

// SDIMMHealth is one buffer's health as surfaced to operators.
type SDIMMHealth struct {
	Index               int
	ID                  string
	State               fault.State
	ConsecutiveFailures int
	Successes           uint64
	Failures            uint64
	// Link recovery activity (zero for clusters without sealed links).
	Retries     uint64
	Retransmits uint64
	Resyncs     uint64
	Abandoned   uint64
	// LastError is the most recent failure cause ("" if none).
	LastError string
}

// ClusterHealth is a point-in-time view of every buffer's health.
type ClusterHealth struct {
	SDIMMs []SDIMMHealth
}

// Healthy reports whether every buffer is in the Healthy state.
func (h ClusterHealth) Healthy() bool {
	for _, s := range h.SDIMMs {
		if s.State != fault.Healthy {
			return false
		}
	}
	return true
}

// Failed lists the indices of fail-stopped buffers.
func (h ClusterHealth) Failed() []int {
	var out []int
	for _, s := range h.SDIMMs {
		if s.State == fault.Failed {
			out = append(out, s.Index)
		}
	}
	return out
}

// Draining lists the indices of buffers currently being drained.
func (h ClusterHealth) Draining() []int {
	var out []int
	for _, s := range h.SDIMMs {
		if s.State == fault.Draining {
			out = append(out, s.Index)
		}
	}
	return out
}

// Removed lists the indices of detached (removed, not yet replaced) slots.
func (h ClusterHealth) Removed() []int {
	var out []int
	for _, s := range h.SDIMMs {
		if s.State == fault.Removed {
			out = append(out, s.Index)
		}
	}
	return out
}

func healthEntry(i int, id string, h *fault.Health, ts fault.TransactorStats) SDIMMHealth {
	succ, fail := h.Totals()
	e := SDIMMHealth{
		Index:               i,
		ID:                  id,
		State:               h.State(),
		ConsecutiveFailures: h.Consecutive(),
		Successes:           succ,
		Failures:            fail,
		Retries:             ts.Retries,
		Retransmits:         ts.Retransmits,
		Resyncs:             ts.Resyncs,
		Abandoned:           ts.Abandoned,
	}
	if err := h.LastError(); err != nil {
		e.LastError = err.Error()
	}
	return e
}

// HealthStates returns a snapshot of every member's health state. Unlike
// Health it reads only the mutex-guarded state machines (no transactor
// stats), so it is safe to call concurrently with a running pipeline — the
// serving front end's capacity ticker polls it while waves are in flight to
// shrink advertised capacity for Degraded/Recovering/Draining members.
func (c *Cluster) HealthStates() []fault.State {
	out := make([]fault.State, len(c.health))
	for i, h := range c.health {
		out[i] = h.State()
	}
	return out
}

// Health returns the current per-SDIMM health view.
func (c *Cluster) Health() ClusterHealth {
	out := ClusterHealth{SDIMMs: make([]SDIMMHealth, len(c.buffers))}
	for i, b := range c.buffers {
		out.SDIMMs[i] = healthEntry(i, b.ID(), c.health[i], c.links[i].Stats())
	}
	return out
}

// SplitClusterOptions sizes a functional Split-protocol ORAM.
type SplitClusterOptions struct {
	// SDIMMs is the number of shard holders (power of two ≥ 2); each holds
	// BlockSize/SDIMMs bytes of every block.
	SDIMMs int
	// Levels is the (single, shared) tree height.
	Levels int
	// BlockSize is the payload bytes per block (default 64; must divide by
	// SDIMMs).
	BlockSize int
	// Key seeds the per-shard bucket encryption/MAC keys.
	Key []byte
	// Seed drives leaf assignment (0 uses 1).
	Seed uint64
	// Parity adds one extra shard holder storing the XOR of all data
	// shards, so a read can be reconstructed when exactly one member is
	// down (fail-stop tolerance at 1/SDIMMs extra capacity).
	Parity bool
	// Faults optionally supplies an injector whose per-shard fail-stop
	// state the cluster honours (shard index i; the parity shard is index
	// SDIMMs).
	Faults *fault.Injector
	// DegradeAfter marks a shard Degraded after this many consecutive
	// failures (default 3).
	DegradeAfter int
	// Parallelism, when > 1, fans each access's per-bucket shard slices out
	// to persistent per-member worker goroutines and joins on a barrier
	// instead of walking the members in a loop. Every member still executes
	// exactly the same operation sequence in the same order, so a
	// Parallelism: 1 cluster and a Parallelism: N cluster with the same
	// seed evolve bit-identically (see DESIGN.md, Concurrency model). Call
	// Close when done to stop the workers.
	Parallelism int
	// Telemetry, when set, receives cluster.* access counters (including
	// cluster.reconstructions) and per-member health-state gauges.
	Telemetry *telemetry.Registry
	// Tracer, when set, records one span per access plus reconstruction
	// and health-transition instants.
	Tracer *telemetry.Tracer
	// Durability, when set, journals committed accesses and checkpoints
	// shard state for RecoverSplitCluster (see DESIGN.md, Durability &
	// crash recovery).
	Durability *DurabilityOptions
}

// withDefaults normalizes the option fields that have defaults.
func (o SplitClusterOptions) withDefaults() SplitClusterOptions {
	if o.BlockSize == 0 {
		o.BlockSize = 64
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// SplitCluster is the functional form of the Split protocol (Section
// III-D): every block is bit-sliced across the member buffers, which hold
// shard trees of identical shape. The host owns the position map, routes
// each access to all members, and reassembles the shards. Each shard tree
// is independently encrypted and MACed (the n-MAC overhead the paper
// accepts), and the members' placements never diverge because greedy
// eviction is a pure function of (identical) stash contents. With Parity
// enabled an extra member holds the XOR of the data shards and evolves in
// the same lockstep, so the loss of any single member is survivable.
type SplitCluster struct {
	buffers   []*isdimm.Buffer // data shards
	parity    *isdimm.Buffer   // nil unless Parity
	health    []*fault.Health  // data shards, then parity (if present)
	faults    *fault.Injector
	pos       oram.PositionMap
	rnd       *rng.Source
	blockSize int
	shard     int
	leaves    uint64
	tm        clusterTelemetry
	workers   *workerPool // nil: member fan-out runs inline
	writeBuf  []byte      // Write's zero-padded payload staging
	durableState

	// Fan-out error slots, reused across accesses (and eviction rounds) so
	// the steady-state access path allocates only what escapes to the caller.
	errScratch []error
	evScratch  []error

	// mkShardMember builds a fresh incarnation of member i's buffer (data
	// shard, or parity when i == SDIMMs). Set by buildSplitCluster; used by
	// ReplaceMember and by checkpoint restore across incarnations.
	mkShardMember func(i int, inc uint64) (*isdimm.Buffer, error)
}

// NewSplitCluster builds a functional split ORAM. With Durability set the
// state directory must be empty (RecoverSplitCluster owns non-empty ones)
// and a genesis checkpoint is written before the cluster accepts traffic.
func NewSplitCluster(opts SplitClusterOptions) (*SplitCluster, error) {
	opts = opts.withDefaults()
	c, err := buildSplitCluster(opts)
	if err != nil {
		return nil, err
	}
	if opts.Durability != nil {
		if err := c.attachDurability(opts.Durability, splitFingerprint(opts), opts.Key); err != nil {
			return nil, err
		}
		if c.dur.HasState() {
			return nil, fmt.Errorf("sdimm: state directory %s already holds checkpoints; use RecoverSplitCluster", opts.Durability.Dir)
		}
		if err := c.ForceCheckpoint(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// newSplitCluster builds the cluster core with no durability attached.
// opts must already be defaulted.
func buildSplitCluster(opts SplitClusterOptions) (*SplitCluster, error) {
	if opts.SDIMMs < 2 || opts.SDIMMs&(opts.SDIMMs-1) != 0 {
		return nil, errors.New("sdimm: SDIMM count must be a power of two ≥ 2")
	}
	if opts.BlockSize%opts.SDIMMs != 0 {
		return nil, fmt.Errorf("sdimm: block size %d not divisible by %d shards", opts.BlockSize, opts.SDIMMs)
	}
	geom, err := oram.NewGeometry(opts.Levels)
	if err != nil {
		return nil, err
	}
	c := &SplitCluster{
		pos:       oram.NewSparsePosMap(),
		rnd:       rng.New(opts.Seed ^ 0x59117),
		blockSize: opts.BlockSize,
		shard:     opts.BlockSize / opts.SDIMMs,
		leaves:    geom.Leaves(),
		faults:    opts.Faults,
		tm:        newClusterTelemetry(opts.Telemetry, opts.Tracer),
	}
	c.poisoned = make(map[uint64]bool)
	if opts.Telemetry != nil && opts.Faults != nil {
		opts.Faults.EnableTelemetry(opts.Telemetry)
	}
	mkShard := func(id, keyPrefix string, seed uint64) (*isdimm.Buffer, error) {
		store, err := oram.NewMemStore(4, c.shard, append([]byte(keyPrefix), opts.Key...))
		if err != nil {
			return nil, err
		}
		engine, err := oram.NewEngine(store, nil, oram.Options{
			Geometry:       geom,
			StashCapacity:  200,
			EvictThreshold: 150,
			// All shards must evolve in lockstep: the host directs
			// eviction with shared randomness (below), so the engines'
			// own background eviction stays off.
			DisableAutoDrain: true,
			Rand:             rng.New(opts.Seed ^ 0x3b1d), // same stream: lockstep
		})
		if err != nil {
			return nil, err
		}
		return isdimm.NewBuffer(id, engine, 64, 0, rng.New(seed))
	}
	for i := 0; i < opts.SDIMMs; i++ {
		buf, err := mkShard(fmt.Sprintf("shard-%d", i), fmt.Sprintf("shard%d|", i),
			opts.Seed^uint64(0x99*i+1))
		if err != nil {
			return nil, err
		}
		c.buffers = append(c.buffers, buf)
		h := fault.NewHealth(opts.DegradeAfter, 0)
		watchHealth(opts.Telemetry, opts.Tracer, nil, h, i)
		c.health = append(c.health, h)
	}
	if opts.Parity {
		buf, err := mkShard("parity", "parity|", opts.Seed^uint64(0x99*opts.SDIMMs+1))
		if err != nil {
			return nil, err
		}
		c.parity = buf
		h := fault.NewHealth(opts.DegradeAfter, 0)
		watchHealth(opts.Telemetry, opts.Tracer, nil, h, opts.SDIMMs)
		c.health = append(c.health, h)
	}
	if opts.Parallelism > 1 {
		c.workers = newWorkerPool(len(c.health), opts.Parallelism, 4)
	}
	c.initElastic(len(c.health))

	// Replacement-member factory. Key prefixes and RNG seeds derive from
	// (slot, incarnation), so a replacement never aliases its predecessor's
	// sealed state; the engine RNG seed here is irrelevant — applySplitJoin
	// immediately copies a live sibling's RNG to restore lockstep.
	c.mkShardMember = func(i int, inc uint64) (*isdimm.Buffer, error) {
		if i < 0 || i >= len(c.health) {
			return nil, fmt.Errorf("sdimm: member slot %d out of range", i)
		}
		id, prefix := fmt.Sprintf("shard-%d.%d", i, inc), fmt.Sprintf("shard%d.%d|", i, inc)
		if i == c.parityIndex() && c.parity != nil {
			id, prefix = fmt.Sprintf("parity.%d", inc), fmt.Sprintf("parity.%d|", inc)
		}
		return mkShard(id, prefix, rng.Stream(opts.Seed, "elastic.shard", int(inc)<<8|i).Uint64())
	}
	return c, nil
}

// Close stops the fan-out workers and releases the durability manager.
// Idempotent.
func (c *SplitCluster) Close() {
	if c.workers != nil {
		c.workers.close()
	}
	if c.dur != nil {
		c.dur.Close()
	}
}

// runMember executes fn as member i's share of the current fan-out: on the
// member's worker goroutine when the cluster is parallel, inline otherwise.
// Either way member i's operation sequence is identical — join must be
// called before reading any state fn wrote.
func (c *SplitCluster) runMember(i int, fn func()) {
	if c.workers != nil {
		c.workers.submit(i, fn)
		return
	}
	fn()
}

// join is the fan-out barrier: after it returns the coordinator observes
// every write made by runMember closures.
func (c *SplitCluster) join() {
	if c.workers != nil {
		c.workers.barrier()
	}
}

// Read returns the payload of addr, reassembled from all shards.
func (c *SplitCluster) Read(addr uint64) ([]byte, error) {
	out, err := c.access(addr, oram.OpRead, nil)
	c.tm.observe(oram.OpRead, err)
	if err == nil {
		err = c.maybeCheckpoint(c.ForceCheckpoint)
	}
	return out, err
}

// Write stores up to BlockSize bytes at addr, splitting it across shards.
func (c *SplitCluster) Write(addr uint64, data []byte) error {
	if len(data) > c.blockSize {
		return fmt.Errorf("sdimm: payload %d exceeds block size %d", len(data), c.blockSize)
	}
	if cap(c.writeBuf) < c.blockSize {
		c.writeBuf = make([]byte, c.blockSize)
	}
	buf := c.writeBuf[:c.blockSize]
	clear(buf)
	copy(buf, data)
	_, err := c.access(addr, oram.OpWrite, buf)
	c.tm.observe(oram.OpWrite, err)
	if err == nil {
		err = c.maybeCheckpoint(c.ForceCheckpoint)
	}
	return err
}

// FailShard marks member i (data shards 0..SDIMMs-1; SDIMMs = parity)
// fail-stopped. Tests and the chaos harness use it to model a member
// dying mid-run.
func (c *SplitCluster) FailShard(i int) {
	if i >= 0 && i < len(c.health) {
		c.health[i].MarkFailed(fault.ErrFailStop)
	}
}

// memberDown reports whether member i is fail-stopped, folding in the
// injector's fail-stop schedule on first observation.
func (c *SplitCluster) memberDown(i int) bool {
	h := c.health[i]
	if h.State() != fault.Failed && c.faults != nil && c.faults.IsFailStopped(i) {
		h.MarkFailed(fault.ErrFailStop)
	}
	return h.State() == fault.Failed
}

func (c *SplitCluster) parityIndex() int { return len(c.buffers) }

func (c *SplitCluster) parityDown() bool {
	if c.parity == nil {
		return true
	}
	return c.memberDown(c.parityIndex())
}

// xorParity folds a full block into one parity slice: the XOR of its
// SDIMMs data slices.
func xorParity(data []byte, shard int) []byte {
	p := make([]byte, shard)
	for i := 0; i+shard <= len(data); i += shard {
		for j := 0; j < shard; j++ {
			p[j] ^= data[i+j]
		}
	}
	return p
}

func (c *SplitCluster) access(addr uint64, op oram.Op, data []byte) ([]byte, error) {
	if c.crashedNow() {
		return nil, durable.ErrCrashed
	}
	oldLeaf, ok := c.pos.Get(addr)
	if !ok {
		oldLeaf = c.rnd.Uint64n(c.leaves)
	}
	newLeaf := c.rnd.Uint64n(c.leaves)

	// Coordinator phase: fold the injector's fail-stop schedule into the
	// health records and find the (at most one) tolerable down member
	// before any shard work is fanned out.
	down := -1
	for i, b := range c.buffers {
		if c.memberDown(i) {
			if down >= 0 {
				return nil, &fault.SDIMMError{Index: i, ID: b.ID(), Op: "shard access",
					Err: fmt.Errorf("sdimm: shards %d and %d both down: %w", down, i, fault.ErrUnavailable)}
			}
			down = i
		}
	}
	pLive := c.parity != nil && !c.parityDown()

	// Shard fan-out: every live member (data shards and parity — the parity
	// member participates in every access, also reads, so its tree stays in
	// lockstep) executes its slice of the access. Each closure touches only
	// member-owned state plus its own slots in out/errs, so the fan-out is
	// race-free; the lowest-index error wins after the barrier, at any
	// parallelism. Result joining happens on the workers too — each copies
	// its slice into its disjoint region of out — so the coordinator's
	// post-barrier work is just the error scan. out is allocated only for
	// reads (it escapes to the caller); errs reuses cluster scratch.
	var out []byte
	if op == oram.OpRead {
		out = make([]byte, c.blockSize)
	}
	errs := resizeErrs(c.errScratch, len(c.health))
	c.errScratch = errs
	var parityData []byte
	for i, b := range c.buffers {
		if i == down {
			continue
		}
		i, b := i, b
		c.runMember(i, func() {
			var shard []byte
			if op == oram.OpWrite {
				shard = data[i*c.shard : (i+1)*c.shard]
			}
			blk, _, err := b.ShardAccess(isdimm.AccessRequest{
				Addr: addr, Op: op, Data: shard, OldLeaf: oldLeaf, NewLeaf: newLeaf,
			})
			if err != nil {
				c.health[i].Failure(err)
				errs[i] = &fault.SDIMMError{Index: i, ID: b.ID(), Op: "shard access", Err: err}
				return
			}
			c.health[i].Success()
			if op == oram.OpRead && blk.Data != nil {
				copy(out[i*c.shard:], blk.Data)
			}
		})
	}
	if pLive {
		pi := c.parityIndex()
		c.runMember(pi, func() {
			var pdata []byte
			if op == oram.OpWrite {
				pdata = xorParity(data, c.shard)
			}
			pblk, _, err := c.parity.ShardAccess(isdimm.AccessRequest{
				Addr: addr, Op: op, Data: pdata, OldLeaf: oldLeaf, NewLeaf: newLeaf,
			})
			if err != nil {
				c.health[pi].Failure(err)
				errs[pi] = &fault.SDIMMError{Index: pi, ID: c.parity.ID(), Op: "parity access", Err: err}
				return
			}
			c.health[pi].Success()
			if pblk.Data != nil {
				// Engine-owned scratch; consumed by the reconstruction below
				// before the parity engine runs again (evictions come later).
				parityData = pblk.Data
			}
		})
	}
	c.join()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}

	if down >= 0 {
		if !pLive {
			return nil, &fault.SDIMMError{Index: down, ID: c.buffers[down].ID(), Op: "shard access",
				Err: fmt.Errorf("sdimm: shard down and no parity to reconstruct from: %w", fault.ErrUnavailable)}
		}
		if op == oram.OpRead {
			// Reconstruct the missing slice: parity ⊕ every healthy slice.
			c.tm.reconstructions.Inc()
			if tr := c.tm.tracer; tr != nil {
				tr.Instant(0, "cluster.reconstruct", "cluster",
					map[string]any{"addr": addr, "shard": down})
			}
			slice := make([]byte, c.shard)
			copy(slice, parityData)
			for i := range c.buffers {
				if i == down {
					continue
				}
				for j := 0; j < c.shard; j++ {
					slice[j] ^= out[i*c.shard+j]
				}
			}
			copy(out[down*c.shard:], slice)
		}
		// Writes simply skip the dead member: the parity slice carries the
		// missing shard's information for later reconstruction.
	}

	// Staged commit: the shard fan-out (and parity) succeeded, so newLeaf
	// is now the truth everywhere. The journal record lands at the same
	// point — a crash before it means the access never happened.
	c.pos.Set(addr, newLeaf)
	if err := c.commitRecord(addr, op, data); err != nil {
		return nil, err
	}

	// Host-directed background eviction: the leaf is drawn once on the
	// coordinator, then every live member evicts it — fanned out with a
	// barrier per round, since NeedsDrain must observe the finished round.
	ref := c.refEngine()
	for n := 0; n < 8 && ref != nil && ref.NeedsDrain(); n++ {
		leaf := c.rnd.Uint64n(c.leaves)
		evErrs := resizeErrs(c.evScratch, len(c.health))
		c.evScratch = evErrs
		for i, b := range c.buffers {
			if c.memberDown(i) {
				continue
			}
			i, b := i, b
			c.runMember(i, func() {
				if err := b.EvictLocal(leaf); err != nil {
					c.health[i].Failure(err)
					evErrs[i] = &fault.SDIMMError{Index: i, ID: b.ID(), Op: "shard eviction", Err: err}
				}
			})
		}
		if c.parity != nil && !c.parityDown() {
			pi := c.parityIndex()
			c.runMember(pi, func() {
				if err := c.parity.EvictLocal(leaf); err != nil {
					c.health[pi].Failure(err)
					evErrs[pi] = &fault.SDIMMError{Index: pi, ID: c.parity.ID(), Op: "parity eviction", Err: err}
				}
			})
		}
		c.join()
		for _, e := range evErrs {
			if e != nil {
				return nil, e
			}
		}
	}
	if op == oram.OpRead {
		return out, nil
	}
	return nil, nil
}

// refEngine returns any live member's engine (they are in lockstep, so any
// one of them answers NeedsDrain for the group).
func (c *SplitCluster) refEngine() *oram.Engine {
	for i, b := range c.buffers {
		if !c.memberDown(i) {
			return b.Engine()
		}
	}
	if c.parity != nil && !c.parityDown() {
		return c.parity.Engine()
	}
	return nil
}

// Positions snapshots the position map as addr → leaf. The
// determinism-equivalence harness compares these across engines.
func (c *SplitCluster) Positions() map[uint64]uint64 {
	out := make(map[uint64]uint64, c.pos.Len())
	c.pos.Each(func(a, l uint64) { out[a] = l })
	return out
}

// StashLens reports each data shard's stash occupancy; the Split invariant
// is that they are always identical.
func (c *SplitCluster) StashLens() []int {
	out := make([]int, len(c.buffers))
	for i, b := range c.buffers {
		out[i] = b.Engine().StashLen()
	}
	return out
}

// HasParity reports whether the cluster carries a parity shard.
func (c *SplitCluster) HasParity() bool { return c.parity != nil }

// Health returns the current per-member health view (data shards first,
// then the parity shard when present).
func (c *SplitCluster) Health() ClusterHealth {
	out := ClusterHealth{SDIMMs: make([]SDIMMHealth, len(c.health))}
	for i, b := range c.buffers {
		out.SDIMMs[i] = healthEntry(i, b.ID(), c.health[i], fault.TransactorStats{})
	}
	if c.parity != nil {
		pi := c.parityIndex()
		out.SDIMMs[pi] = healthEntry(pi, c.parity.ID(), c.health[pi], fault.TransactorStats{})
	}
	return out
}
