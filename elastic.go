package sdimm

import (
	"errors"
	"fmt"
	"sort"

	"sdimm/internal/durable"
	"sdimm/internal/fault"
	"sdimm/internal/oram"
	isdimm "sdimm/internal/sdimm"
)

// This file implements elastic cluster membership: online drain/remove/join
// for the Independent cluster and failed-member replacement for the Split
// cluster. Every topology change is journaled through internal/durable
// (KindDrainBegin / KindDrainEnd / KindJoin), and every migration step is a
// normal-shaped access journaled as KindMigrate — a crash at any point
// recovers to the state before or after the interrupted step, never between.
// See DESIGN.md, "Elasticity & rebalancing".

// --- Independent cluster: drain / remove / join ---

// BeginDrain starts draining member i: it is excluded from new-leaf
// placement from this point on, but keeps serving exchanges (including the
// APPEND dummies of unrelated traffic) so the channel-visible traffic shape
// is unchanged. At most one drain runs at a time. The drain itself advances
// via DrainStep and ends with CompleteDrain.
func (c *Cluster) BeginDrain(i int) error {
	if c.crashedNow() {
		return durable.ErrCrashed
	}
	if i < 0 || i >= len(c.buffers) {
		return fmt.Errorf("sdimm: member slot %d out of range", i)
	}
	if c.drainMember >= 0 {
		return fmt.Errorf("sdimm: drain of member %d already in progress", c.drainMember)
	}
	switch st := c.health[i].State(); st {
	case fault.Failed, fault.Removed:
		return fmt.Errorf("sdimm: cannot drain member %d in state %s (use RemoveFailed)", i, st)
	case fault.Draining:
		return fmt.Errorf("sdimm: member %d already draining", i)
	}
	// At least one other member must be eligible to receive the blocks.
	others := 0
	for j := range c.health {
		if j == i {
			continue
		}
		switch c.health[j].State() {
		case fault.Failed, fault.Draining, fault.Removed:
		default:
			others++
		}
	}
	if others == 0 {
		return ErrNoHealthySDIMM
	}
	return c.applyDrainBegin(i)
}

// applyDrainBegin is BeginDrain's committed effect, shared with replay.
func (c *Cluster) applyDrainBegin(i int) error {
	if i < 0 || i >= len(c.buffers) {
		return fmt.Errorf("sdimm: drain-begin member %d out of range", i)
	}
	if !c.health[i].MarkDraining() {
		return fmt.Errorf("sdimm: member %d cannot drain in state %s", i, c.health[i].State())
	}
	c.drainMember = i
	c.drainMoved = 0
	if tr := c.tm.tracer; tr != nil {
		tr.Instant(0, "cluster.drain.begin", "cluster", map[string]any{"sdimm": i})
	}
	return c.commitTopoRecord(durable.KindDrainBegin, i)
}

// DrainRemaining counts the addresses still mapped to the draining member
// (0 when no drain is in progress).
func (c *Cluster) DrainRemaining() int {
	if c.drainMember < 0 {
		return 0
	}
	n := 0
	c.pos.Each(func(_, g uint64) {
		if int(g>>c.localBits) == c.drainMember {
			n++
		}
	})
	return n
}

// NextMigrations returns up to n addresses the drain will migrate next, in
// the order DrainStep would take them (ascending address). Drivers use it
// to build migration batches for the parallel pipeline; the selection is a
// pure function of the position map, so a restarted driver recomputes the
// same order.
func (c *Cluster) NextMigrations(n int) []uint64 {
	if c.drainMember < 0 || n <= 0 {
		return nil
	}
	var addrs []uint64
	c.pos.Each(func(a, g uint64) {
		if int(g>>c.localBits) == c.drainMember {
			addrs = append(addrs, a)
		}
	})
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	if len(addrs) > n {
		addrs = addrs[:n]
	}
	return addrs
}

// DrainStep migrates one block off the draining member: the lowest still-
// mapped address is read through the ordinary access path, which re-homes
// it because pickHealthyLeaf no longer offers the draining member's leaves.
// On the channel the step is a single normal-shaped access — an observer
// cannot tell it from workload traffic. done reports that nothing was left
// to migrate (the step performed no access).
func (c *Cluster) DrainStep() (done bool, err error) {
	if c.crashedNow() {
		return false, durable.ErrCrashed
	}
	if c.drainMember < 0 {
		return false, errors.New("sdimm: no drain in progress")
	}
	addr, ok := c.nextDrainAddr()
	if !ok {
		return true, nil
	}
	c.migrating = true
	_, err = c.tracedAccess(addr, oram.OpRead, nil)
	c.migrating = false
	if err != nil {
		return false, err
	}
	c.tm.migrations.Inc()
	if err := c.maybeCheckpoint(c.ForceCheckpoint); err != nil {
		return false, err
	}
	return false, nil
}

// nextDrainAddr finds the lowest address still mapped to the draining
// member.
func (c *Cluster) nextDrainAddr() (uint64, bool) {
	best, found := uint64(0), false
	c.pos.Each(func(a, g uint64) {
		if int(g>>c.localBits) != c.drainMember {
			return
		}
		if !found || a < best {
			best, found = a, true
		}
	})
	return best, found
}

// CompleteDrain detaches the drained member once nothing is mapped to it.
// The slot becomes Removed (terminal until a join repopulates it).
func (c *Cluster) CompleteDrain() error {
	if c.crashedNow() {
		return durable.ErrCrashed
	}
	if c.drainMember < 0 {
		return errors.New("sdimm: no drain in progress")
	}
	if left := c.DrainRemaining(); left > 0 {
		return fmt.Errorf("sdimm: drain of member %d incomplete: %d blocks remain", c.drainMember, left)
	}
	return c.applyDetach(c.drainMember)
}

// CancelDrain aborts a drain in progress: the member returns to the
// placement pool and whatever migrated stays where it landed (migration is
// just placement — no state needs undoing). The cancellation journals as a
// DrainEnd record without a detach.
func (c *Cluster) CancelDrain() error {
	if c.crashedNow() {
		return durable.ErrCrashed
	}
	if c.drainMember < 0 {
		return errors.New("sdimm: no drain in progress")
	}
	i := c.drainMember
	if !c.health[i].CancelDraining() {
		// The member failed mid-drain; cancellation cannot resurrect it.
		return fmt.Errorf("sdimm: member %d is %s, not draining", i, c.health[i].State())
	}
	c.drainMember, c.drainMoved = -1, 0
	if tr := c.tm.tracer; tr != nil {
		tr.Instant(0, "cluster.drain.cancel", "cluster", map[string]any{"sdimm": i})
	}
	return c.commitTopoRecord(durable.KindDrainEnd, i)
}

// RemoveFailed detaches a fail-stopped member without a drain. Blocks still
// mapped to it are lost: each is poisoned (reads fail with ErrUnrecoverable
// until a write heals the address) and remapped to a surviving member so
// the tree stays navigable and future accesses keep their normal shape.
func (c *Cluster) RemoveFailed(i int) error {
	if c.crashedNow() {
		return durable.ErrCrashed
	}
	if i < 0 || i >= len(c.buffers) {
		return fmt.Errorf("sdimm: member slot %d out of range", i)
	}
	if c.detached[i] {
		return fmt.Errorf("sdimm: member %d already removed", i)
	}
	if st := c.health[i].State(); st != fault.Failed {
		return fmt.Errorf("sdimm: member %d is %s, not failed; drain it instead", i, st)
	}
	return c.applyDetach(i)
}

// applyDetach is the committed effect of CompleteDrain and RemoveFailed,
// shared with replay. MarkRemoved runs first so the remap draws below never
// offer the departing member; the leftover-address walk is in sorted order
// and the RNG draws happen at a deterministic point, so replay reproduces
// the exact remapping. After a completed drain the walk is empty.
func (c *Cluster) applyDetach(i int) error {
	if i < 0 || i >= len(c.buffers) {
		return fmt.Errorf("sdimm: detach member %d out of range", i)
	}
	wasDrain := c.drainMember == i
	c.health[i].MarkRemoved()
	c.detached[i] = true
	if c.drainMember == i {
		c.drainMember, c.drainMoved = -1, 0
	}
	var orphans []uint64
	c.pos.Each(func(a, g uint64) {
		if int(g>>c.localBits) == i {
			orphans = append(orphans, a)
		}
	})
	sort.Slice(orphans, func(a, b int) bool { return orphans[a] < orphans[b] })
	globalLeaves := uint64(1) << (c.levels - 1)
	for _, a := range orphans {
		g, err := c.pickHealthyLeaf(globalLeaves)
		if err != nil {
			return err
		}
		c.pos.Set(a, g)
		c.poisoned[a] = true
	}
	if tr := c.tm.tracer; tr != nil {
		tr.Instant(0, "cluster.detach", "cluster",
			map[string]any{"sdimm": i, "drained": wasDrain, "lost": len(orphans)})
	}
	return c.commitTopoRecord(durable.KindDrainEnd, i)
}

// AddSDIMM populates a removed slot with a fresh member (a join). The new
// incarnation gets its own sealed store, device identity, and link session;
// it starts empty and in Recovering probation, entering the placement pool
// on its first successful exchange. Only a detached slot can be joined —
// capacity changes reuse slots, keeping the global tree geometry (and with
// it the oblivious routing arithmetic) fixed.
func (c *Cluster) AddSDIMM(i int) error {
	if c.crashedNow() {
		return durable.ErrCrashed
	}
	if i < 0 || i >= len(c.buffers) {
		return fmt.Errorf("sdimm: member slot %d out of range", i)
	}
	if !c.detached[i] {
		return fmt.Errorf("sdimm: slot %d still holds a member; drain and remove it first", i)
	}
	return c.applyJoin(i)
}

// applyJoin is AddSDIMM's committed effect, shared with replay.
func (c *Cluster) applyJoin(i int) error {
	if i < 0 || i >= len(c.buffers) {
		return fmt.Errorf("sdimm: join member %d out of range", i)
	}
	inc := c.incarnations[i] + 1
	if err := c.mkMember(i, inc); err != nil {
		return err
	}
	c.incarnations[i] = inc
	c.detached[i] = false
	// Lifetime exchange totals survive the slot's previous occupant; the
	// state machine restarts in probation with a clean streak.
	succ, fail := c.health[i].Totals()
	c.health[i].Restore(fault.Recovering, 0, succ, fail)
	if tr := c.tm.tracer; tr != nil {
		tr.Instant(0, "cluster.join", "cluster", map[string]any{"sdimm": i, "incarnation": inc})
	}
	return c.commitTopoRecord(durable.KindJoin, i)
}

// --- Split cluster: failed-member replacement ---

// ReplaceMember rebuilds failed member i (data shards 0..SDIMMs-1; SDIMMs =
// parity) from the surviving members. Shard trees evolve in lockstep and
// the parity member holds the XOR of the data shards, so the missing
// member's entire tree — buckets, stash, transfer queue — is the XOR of all
// other members', resealed under the new incarnation's keys. There is no
// drain flavour for Split: the protocol has no routing, so membership can
// only change by whole-member replacement.
func (c *SplitCluster) ReplaceMember(i int) error {
	if c.crashedNow() {
		return durable.ErrCrashed
	}
	if i < 0 || i >= len(c.health) {
		return fmt.Errorf("sdimm: member slot %d out of range", i)
	}
	if c.parity == nil {
		return errors.New("sdimm: replacement requires a parity member")
	}
	if c.health[i].State() != fault.Failed {
		return fmt.Errorf("sdimm: member %d is %s, not failed", i, c.health[i].State())
	}
	for j := range c.health {
		if j != i && c.memberDown(j) {
			return fmt.Errorf("sdimm: cannot rebuild member %d: member %d also down", i, j)
		}
	}
	return c.applySplitJoin(i)
}

// applySplitJoin is ReplaceMember's committed effect, shared with replay.
// It must not require the member to be Failed: during replay the slot's
// buffer participated in the replayed accesses (the replayed cluster has no
// knowledge of the original fail-stop), but its state is provably identical
// to what reconstruction yields — every member's tree is a pure function of
// the shared access history — so rebuilding over it is a no-op disguised as
// a rebuild, and the RNG/journal effects match the original run exactly.
func (c *SplitCluster) applySplitJoin(i int) error {
	if i < 0 || i >= len(c.health) {
		return fmt.Errorf("sdimm: join member %d out of range", i)
	}
	if c.parity == nil {
		return errors.New("sdimm: replacement requires a parity member")
	}
	inc := c.incarnations[i] + 1
	buf, err := c.mkShardMember(i, inc)
	if err != nil {
		return err
	}
	members := c.allMembers()
	var good []*isdimm.Buffer
	for j, b := range members {
		if j != i {
			good = append(good, b)
		}
	}

	// Buckets: headers and write counters agree across members (lockstep),
	// data is the XOR of all others'. Seal each rebuilt bucket under the
	// sibling's counter so the write counters stay aligned too.
	tplStore := memStore(good[0])
	for _, idx := range tplStore.BucketIndices() {
		tpl, err := tplStore.ReadBucket(idx)
		if err != nil {
			return err
		}
		rebuilt := oram.NewBucket(len(tpl.Slots))
		for s := range tpl.Slots {
			rebuilt.Slots[s].Addr = tpl.Slots[s].Addr
			rebuilt.Slots[s].Leaf = tpl.Slots[s].Leaf
			if rebuilt.Slots[s].IsDummy() {
				continue
			}
			data := make([]byte, c.shard)
			for _, g := range good {
				bkt, err := memStore(g).ReadBucket(idx)
				if err != nil {
					return err
				}
				d := bkt.Slots[s].Data
				for j := range data {
					data[j] ^= d[j]
				}
			}
			rebuilt.Slots[s].Data = data
		}
		if err := memStore(buf).PutBucketAt(idx, rebuilt, tplStore.Counter(idx)); err != nil {
			return err
		}
	}

	// Stash: same (addr, leaf) order on every member, data XOR-aligned.
	tplStash := good[0].Engine().StashBlocks()
	otherStashes := make([][]oram.Block, len(good))
	for j, g := range good {
		otherStashes[j] = g.Engine().StashBlocks()
	}
	rebuiltStash := make([]oram.Block, len(tplStash))
	for s, blk := range tplStash {
		data := make([]byte, c.shard)
		for j := range good {
			d := otherStashes[j][s].Data
			for k := range data {
				data[k] ^= d[k]
			}
		}
		rebuiltStash[s] = oram.Block{Addr: blk.Addr, Leaf: blk.Leaf, Data: data}
	}
	if err := buf.Engine().RestoreStash(rebuiltStash); err != nil {
		return err
	}

	// Engine RNG: copy a live sibling's state so the lockstep eviction draws
	// stay identical from the next access on.
	buf.Engine().RestoreRandState(good[0].Engine().RandState())

	if i < len(c.buffers) {
		c.buffers[i] = buf
	} else {
		c.parity = buf
	}
	c.incarnations[i] = inc
	succ, fail := c.health[i].Totals()
	c.health[i].Restore(fault.Recovering, 0, succ, fail)
	if tr := c.tm.tracer; tr != nil {
		tr.Instant(0, "cluster.join", "cluster", map[string]any{"member": i, "incarnation": inc})
	}
	return c.commitTopoRecord(durable.KindJoin, i)
}
