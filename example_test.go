package sdimm_test

import (
	"fmt"
	"log"

	"sdimm"
)

// ExampleORAM shows the functional Path ORAM as an oblivious block store.
func ExampleORAM() {
	store, err := sdimm.NewORAM(sdimm.ORAMOptions{Levels: 10, Key: []byte("demo")})
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Write(7, []byte("secret")); err != nil {
		log.Fatal(err)
	}
	data, err := store.Read(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data[:6]))
	// Output: secret
}

// ExampleCluster runs the Independent protocol functionally: the block
// migrates between secure buffers as its leaf is remapped, over encrypted
// links.
func ExampleCluster() {
	cluster, err := sdimm.NewCluster(sdimm.ClusterOptions{
		SDIMMs: 4,
		Levels: 10,
		Key:    []byte("demo"),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Write(3, []byte("distributed")); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ { // each read likely moves the block
		if _, err := cluster.Read(3); err != nil {
			log.Fatal(err)
		}
	}
	data, err := cluster.Read(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data[:11]))
	// Output: distributed
}

// ExampleSplitCluster bit-slices each block across four shard trees.
func ExampleSplitCluster() {
	c, err := sdimm.NewSplitCluster(sdimm.SplitClusterOptions{
		SDIMMs: 4,
		Levels: 10,
		Key:    []byte("demo"),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Write(1, []byte("sharded")); err != nil {
		log.Fatal(err)
	}
	data, err := c.Read(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data[:7]))
	// Output: sharded
}

// ExampleSimulate runs one cycle-level simulation of the paper's platform.
func ExampleSimulate() {
	cfg := sdimm.DefaultConfig(sdimm.Independent, 1)
	cfg.ORAM.Levels = 20
	cfg.WarmupAccesses = 50
	cfg.MeasureAccesses = 100
	res, err := sdimm.Simulate(cfg, "mcf")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Protocol, res.LLCMisses > 0, res.Energy.Total() > 0)
	// Output: independent true true
}

// ExampleNewRecursiveORAM stores the position maps inside the ORAM itself.
func ExampleNewRecursiveORAM() {
	rec, err := sdimm.NewRecursiveORAM(sdimm.RecursiveORAMOptions{
		DataBlocks: 2048,
		Levels:     12,
		Key:        []byte("demo"),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := rec.Write(5, []byte("recursive")); err != nil {
		log.Fatal(err)
	}
	data, err := rec.Read(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data[:9]))
	// Output: recursive
}
