// Hot-path benchmarks for the steady-state access loop. Each sub-benchmark
// isolates one layer of the stack — seccomm framing, the ORAM engine, the
// journal commit, the full cluster access — and reports allocs/op so a
// regression in any layer's memory discipline is visible at a glance. The
// hard 0-alloc gates live next to each layer (seccomm, oram, durable
// alloc_test.go files) and run in `make ci`; cmd/sdimm-bench -exp hotpath
// runs these same loops at full scale and writes BENCH_hotpath.json.
package sdimm

import (
	"testing"

	"sdimm/internal/durable"
	"sdimm/internal/oram"
	"sdimm/internal/rng"
	"sdimm/internal/seccomm"
)

func BenchmarkAccessHotPath(b *testing.B) {
	b.Run("seccomm-seal-open", benchSealOpen)
	b.Run("engine-access", benchEngineAccess)
	b.Run("journal-append", benchJournalAppend)
	b.Run("cluster-access", benchClusterAccess)
}

// benchSealOpen measures one authenticated frame round trip (host seals,
// device opens) with caller-supplied buffers — the per-message cost of every
// host↔buffer exchange. Steady state is 0 allocs/op.
func benchSealOpen(b *testing.B) {
	dev, err := seccomm.NewDevice("bench-0", nil)
	if err != nil {
		b.Fatal(err)
	}
	auth := seccomm.NewAuthority()
	auth.Register(dev)
	host, devSess, err := seccomm.Handshake(nil, dev, auth)
	if err != nil {
		b.Fatal(err)
	}
	pt := make([]byte, 90)
	sealBuf := make([]byte, 0, len(pt)+seccomm.MACSize)
	openBuf := make([]byte, 0, len(pt))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame := host.SealAppend(sealBuf[:0], pt)
		if _, err := devSess.OpenAppend(openBuf[:0], frame); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEngineAccess measures one full accessORAM (path read, remap,
// writeback, background eviction) on a functional engine. Steady state is
// 0 allocs/op.
func benchEngineAccess(b *testing.B) {
	store, err := oram.NewMemStore(4, 64, []byte("bench-key"))
	if err != nil {
		b.Fatal(err)
	}
	e, err := oram.NewEngine(store, oram.NewSparsePosMap(), oram.Options{
		Geometry:       oram.MustGeometry(12),
		StashCapacity:  200,
		EvictThreshold: 150,
		Rand:           rng.New(42),
	})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64)
	const addrs = 64
	for i := 0; i < 4*addrs; i++ { // warm the scratch and free list
		if _, _, err := e.Access(uint64(i%addrs), oram.OpWrite, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := oram.OpRead
		if i%2 == 0 {
			op = oram.OpWrite
		}
		if _, _, err := e.Access(uint64(i%addrs), op, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// benchJournalAppend measures committing one access record: encode, extend
// the hash chain, write to the journal (fsync off). Steady state is
// 0 allocs/op.
func benchJournalAppend(b *testing.B) {
	fp := durable.Fingerprint{Kind: "independent", Members: 4, Levels: 12, BlockSize: 64, Z: 4, Seed: 1}
	m, err := durable.Open(b.TempDir(), []byte("bench-key"), fp, 64, false)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.WriteCheckpoint(&durable.Checkpoint{Seq: 0}); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64)
	var batch [1]durable.Record
	seq := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch[0] = durable.Record{Seq: seq, Addr: seq % 32, Kind: durable.KindWrite, Data: payload}
		if err := m.Append(batch[:]); err != nil {
			b.Fatal(err)
		}
		seq++
	}
}

// benchClusterAccess measures one sequential cluster access end to end:
// frontend position lookup, sealed command exchange, device-side engine
// access, sealed response, eviction appends. The cluster path tolerates a
// small, bounded allocation count (response payloads are handed to the
// caller); the per-layer gates above keep the inner loops at zero.
func benchClusterAccess(b *testing.B) {
	c, err := NewCluster(ClusterOptions{SDIMMs: 4, Levels: 12, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64)
	const addrs = 64
	for i := 0; i < 2*addrs; i++ { // warm stashes, free lists, link scratch
		if err := c.Write(uint64(i%addrs), payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := uint64(i % addrs)
		if i%2 == 0 {
			if err := c.Write(a, payload); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := c.Read(a); err != nil {
				b.Fatal(err)
			}
		}
	}
}
