package sdimm_test

import (
	"testing"
	"time"

	"sdimm/internal/chaos"
	"sdimm/internal/fault"
)

// chaosFaults is the acceptance schedule: ~1.7% of deliveries fault (the
// issue requires ≥1% per-message), spread across every fault class the
// injector models.
var chaosFaults = fault.Config{
	Seed:       1234,
	BitFlip:    0.005,
	Drop:       0.004,
	Duplicate:  0.003,
	Replay:     0.002,
	Stall:      0.002,
	MACCorrupt: 0.001,
}

// TestChaosClusterUnderRandomFaults is the acceptance run: thousands of
// accesses over links faulting on >1% of deliveries, with zero payload
// mismatches against a reference map, zero surfaced errors, and zero
// breaches of the traffic-pattern invariant (retries byte-identical,
// constant exchange count per error-free access).
func TestChaosClusterUnderRandomFaults(t *testing.T) {
	accesses := 6000
	if testing.Short() {
		accesses = 600
	}
	res, err := chaos.Run(chaos.Config{
		SDIMMs:       4,
		Levels:       10,
		Accesses:     accesses,
		Addresses:    96,
		Seed:         42,
		Faults:       chaosFaults,
		Retry:        fault.RetryPolicy{MaxAttempts: 8, Sleep: func(time.Duration) {}},
		CheckTraffic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultRate < 0.01 {
		t.Fatalf("fault rate %.4f below the 1%% acceptance floor", res.FaultRate)
	}
	if res.Mismatches != 0 {
		t.Fatalf("%d payload mismatches under chaos:\n%s", res.Mismatches, res)
	}
	if res.TrafficViolations != 0 {
		t.Fatalf("%d traffic-pattern violations — retries leaked:\n%s", res.TrafficViolations, res)
	}
	if res.Errors != 0 {
		t.Fatalf("%d accesses exhausted the retry budget at a %.1f%% fault rate:\n%s",
			res.Errors, 100*res.FaultRate, res)
	}
	s := res.FaultStats
	if s.Drops == 0 || s.BitFlips == 0 || s.Duplicates == 0 || s.Replays == 0 || s.Stalls == 0 || s.MACCorruptions == 0 {
		t.Fatalf("some fault class never fired — the run proved nothing: %+v", s)
	}
	t.Logf("\n%s", res)
}

// TestChaosSplitParityFailStop kills one Split data shard a third of the
// way through a randomized workload; parity reconstruction must keep every
// payload byte-exact with no errors.
func TestChaosSplitParityFailStop(t *testing.T) {
	accesses := 1800
	if testing.Short() {
		accesses = 300
	}
	res, err := chaos.RunSplit(chaos.SplitConfig{
		SDIMMs:      4,
		Levels:      10,
		Accesses:    accesses,
		Addresses:   64,
		Seed:        7,
		Parity:      true,
		FailShardAt: accesses / 3,
		FailShard:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatches != 0 || res.Errors != 0 {
		t.Fatalf("split chaos: %d mismatches, %d errors:\n%s", res.Mismatches, res.Errors, res)
	}
	failed := res.Health.Failed()
	if len(failed) != 1 || failed[0] != 1 {
		t.Fatalf("health lost track of the dead shard: %v", failed)
	}
	t.Logf("\n%s", res)
}

// TestChaosSplitWithoutParityLosesShard documents the contrapositive: the
// same campaign without a parity member must fail closed at the member
// loss, not serve corrupted data.
func TestChaosSplitWithoutParityLosesShard(t *testing.T) {
	res, err := chaos.RunSplit(chaos.SplitConfig{
		SDIMMs:      4,
		Levels:      10,
		Accesses:    200,
		Addresses:   32,
		Seed:        7,
		Parity:      false,
		FailShardAt: 50,
		FailShard:   1,
	})
	if err == nil {
		t.Fatalf("run survived a shard loss without parity:\n%s", res)
	}
	if res.Mismatches != 0 {
		t.Fatalf("served %d corrupted payloads before failing", res.Mismatches)
	}
}
