package sdimm_test

import (
	"reflect"
	"testing"
	"time"

	"sdimm/internal/chaos"
	"sdimm/internal/fault"
	"sdimm/internal/telemetry"
)

// chaosFaults is the acceptance schedule: ~1.7% of deliveries fault (the
// issue requires ≥1% per-message), spread across every fault class the
// injector models.
var chaosFaults = fault.Config{
	Seed:       1234,
	BitFlip:    0.005,
	Drop:       0.004,
	Duplicate:  0.003,
	Replay:     0.002,
	Stall:      0.002,
	MACCorrupt: 0.001,
}

// TestChaosClusterUnderRandomFaults is the acceptance run: thousands of
// accesses over links faulting on >1% of deliveries, with zero payload
// mismatches against a reference map, zero surfaced errors, and zero
// breaches of the traffic-pattern invariant (retries byte-identical,
// constant exchange count per error-free access).
func TestChaosClusterUnderRandomFaults(t *testing.T) {
	accesses := 6000
	if testing.Short() {
		accesses = 600
	}
	res, err := chaos.Run(chaos.Config{
		SDIMMs:       4,
		Levels:       10,
		Accesses:     accesses,
		Addresses:    96,
		Seed:         42,
		Faults:       chaosFaults,
		Retry:        fault.RetryPolicy{MaxAttempts: 8, Sleep: func(time.Duration) {}},
		CheckTraffic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultRate < 0.01 {
		t.Fatalf("fault rate %.4f below the 1%% acceptance floor", res.FaultRate)
	}
	if res.Mismatches != 0 {
		t.Fatalf("%d payload mismatches under chaos:\n%s", res.Mismatches, res)
	}
	if res.TrafficViolations != 0 {
		t.Fatalf("%d traffic-pattern violations — retries leaked:\n%s", res.TrafficViolations, res)
	}
	if res.Errors != 0 {
		t.Fatalf("%d accesses exhausted the retry budget at a %.1f%% fault rate:\n%s",
			res.Errors, 100*res.FaultRate, res)
	}
	s := res.FaultStats
	if s.Drops == 0 || s.BitFlips == 0 || s.Duplicates == 0 || s.Replays == 0 || s.Stalls == 0 || s.MACCorruptions == 0 {
		t.Fatalf("some fault class never fired — the run proved nothing: %+v", s)
	}
	t.Logf("\n%s", res)
}

// TestChaosRingClusterUnderRandomFaults re-runs the acceptance campaign on
// a ring-eviction cluster (deferred-flush interval 4): the >1% fault
// schedule, zero-mismatch, zero-violation bar is identical, and the
// parallel leg must match the sequential leg's payload accounting exactly —
// the ring engines' extra state (eviction pointer, invalid-slot masks) must
// not open any divergence under retries.
func TestChaosRingClusterUnderRandomFaults(t *testing.T) {
	accesses := 3000
	if testing.Short() {
		accesses = 600
	}
	base := chaos.Config{
		SDIMMs:            4,
		Levels:            10,
		RingFlushInterval: 4,
		Accesses:          accesses,
		Addresses:         96,
		Seed:              42,
		Faults:            chaosFaults,
		Retry:             fault.RetryPolicy{MaxAttempts: 8, Sleep: func(time.Duration) {}},
		CheckTraffic:      true,
	}
	seq, err := chaos.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if seq.FaultRate < 0.01 {
		t.Fatalf("fault rate %.4f below the 1%% acceptance floor", seq.FaultRate)
	}
	if seq.Mismatches != 0 || seq.TrafficViolations != 0 || seq.Errors != 0 {
		t.Fatalf("ring cluster went red under chaos:\n%s", seq)
	}
	par := base
	par.Parallelism, par.Batch = 4, 8
	pres, err := chaos.Run(par)
	if err != nil {
		t.Fatal(err)
	}
	if pres.Mismatches != 0 || pres.TrafficViolations != 0 || pres.Errors != 0 {
		t.Fatalf("parallel ring cluster went red under chaos:\n%s", pres)
	}
	if seq.Reads != pres.Reads || seq.Writes != pres.Writes {
		t.Fatalf("ring parallel accounting diverged: seq %d/%d vs par %d/%d",
			seq.Reads, seq.Writes, pres.Reads, pres.Writes)
	}
	t.Logf("\n%s", seq)
}

// TestChaosClusterUnderRandomFaultsParallel re-runs the acceptance scenario
// through the batched access pipeline with four concurrent SDIMM workers:
// zero mismatches, zero traffic-invariant violations (whole-run exchange
// accounting), and the telemetry fault counters must agree exactly with the
// harness's own accounting.
func TestChaosClusterUnderRandomFaultsParallel(t *testing.T) {
	accesses := 6000
	if testing.Short() {
		accesses = 600
	}
	reg := telemetry.NewRegistry()
	res, err := chaos.Run(chaos.Config{
		SDIMMs:       4,
		Levels:       10,
		Accesses:     accesses,
		Addresses:    96,
		Seed:         42,
		Faults:       chaosFaults,
		Retry:        fault.RetryPolicy{MaxAttempts: 8, Sleep: func(time.Duration) {}},
		CheckTraffic: true,
		Parallelism:  4,
		Batch:        8,
		Telemetry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatches != 0 {
		t.Fatalf("%d payload mismatches under parallel chaos:\n%s", res.Mismatches, res)
	}
	if res.TrafficViolations != 0 {
		t.Fatalf("%d traffic-pattern violations — retries leaked:\n%s", res.TrafficViolations, res)
	}
	if res.Errors != 0 {
		t.Fatalf("%d accesses exhausted the retry budget:\n%s", res.Errors, res)
	}
	s := res.FaultStats
	if s.Drops == 0 || s.BitFlips == 0 || s.Duplicates == 0 || s.Replays == 0 || s.Stalls == 0 {
		t.Fatalf("some fault class never fired — the run proved nothing: %+v", s)
	}

	// Fault counters must match the harness accounting exactly.
	snap := res.Snapshot
	if snap == nil {
		t.Fatal("run with a registry returned no snapshot")
	}
	counterChecks := map[string]uint64{
		"fault.injected.bitflips":        s.BitFlips,
		"fault.injected.drops":           s.Drops,
		"fault.injected.duplicates":      s.Duplicates,
		"fault.injected.replays":         s.Replays,
		"fault.injected.stalls":          s.Stalls,
		"fault.injected.mac_corruptions": s.MACCorruptions,
		"cluster.accesses":               uint64(res.Accesses),
		"cluster.errors":                 uint64(res.Errors),
	}
	for name, want := range counterChecks {
		if got := snap.Counters[name]; got != want {
			t.Errorf("telemetry %s = %d, harness accounting says %d", name, got, want)
		}
	}
	var retries, retransmits uint64
	for _, sd := range res.Health.SDIMMs {
		retries += sd.Retries
		retransmits += sd.Retransmits
	}
	if got := snap.Counters["fault.retries"]; got != retries {
		t.Errorf("telemetry fault.retries = %d, health view sums to %d", got, retries)
	}
	if got := snap.Counters["fault.retransmits"]; got != retransmits {
		t.Errorf("telemetry fault.retransmits = %d, health view sums to %d", got, retransmits)
	}
	t.Logf("\n%s", res)
}

// TestChaosDeterminismAcrossParallelism pins the harness-level determinism
// claims: (a) a Batch: 1 parallel run degenerates to exactly the sequential
// execution, so the entire Result matches the sequential driver's; (b) two
// batched runs that differ only in Parallelism are identical to each other.
func TestChaosDeterminismAcrossParallelism(t *testing.T) {
	base := chaos.Config{
		SDIMMs:       4,
		Levels:       10,
		Accesses:     900,
		Addresses:    96,
		Seed:         42,
		Faults:       chaosFaults,
		Retry:        fault.RetryPolicy{MaxAttempts: 8, Sleep: func(time.Duration) {}},
		CheckTraffic: true,
	}
	run := func(parallelism, batch int) chaos.Result {
		cfg := base
		cfg.Parallelism = parallelism
		cfg.Batch = batch
		res, err := chaos.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res.Snapshot = nil
		return res
	}
	seq := run(0, 0)
	if got := run(4, 1); !reflect.DeepEqual(seq, got) {
		t.Errorf("batch-1 parallel run diverged from sequential:\n--- seq ---\n%s--- par ---\n%s", seq, got)
	}
	b2 := run(2, 8)
	if b4 := run(4, 8); !reflect.DeepEqual(b2, b4) {
		t.Errorf("parallelism 2 vs 4 diverged at batch 8:\n--- p2 ---\n%s--- p4 ---\n%s", b2, b4)
	}
}

// TestChaosSplitParityFailStopParallel re-runs the Split member-loss
// campaign with the per-member fan-out workers enabled; the result must be
// identical to the inline run.
func TestChaosSplitParityFailStopParallel(t *testing.T) {
	accesses := 1800
	if testing.Short() {
		accesses = 300
	}
	cfg := chaos.SplitConfig{
		SDIMMs:      4,
		Levels:      10,
		Accesses:    accesses,
		Addresses:   64,
		Seed:        7,
		Parity:      true,
		FailShardAt: accesses / 3,
		FailShard:   1,
	}
	inline, err := chaos.RunSplit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 4
	par, err := chaos.RunSplit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if par.Mismatches != 0 || par.Errors != 0 {
		t.Fatalf("parallel split chaos: %d mismatches, %d errors:\n%s", par.Mismatches, par.Errors, par)
	}
	if !reflect.DeepEqual(inline, par) {
		t.Errorf("split fan-out diverged from inline run:\n--- inline ---\n%s--- parallel ---\n%s", inline, par)
	}
}

// TestChaosSplitParityFailStop kills one Split data shard a third of the
// way through a randomized workload; parity reconstruction must keep every
// payload byte-exact with no errors.
func TestChaosSplitParityFailStop(t *testing.T) {
	accesses := 1800
	if testing.Short() {
		accesses = 300
	}
	res, err := chaos.RunSplit(chaos.SplitConfig{
		SDIMMs:      4,
		Levels:      10,
		Accesses:    accesses,
		Addresses:   64,
		Seed:        7,
		Parity:      true,
		FailShardAt: accesses / 3,
		FailShard:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatches != 0 || res.Errors != 0 {
		t.Fatalf("split chaos: %d mismatches, %d errors:\n%s", res.Mismatches, res.Errors, res)
	}
	failed := res.Health.Failed()
	if len(failed) != 1 || failed[0] != 1 {
		t.Fatalf("health lost track of the dead shard: %v", failed)
	}
	t.Logf("\n%s", res)
}

// TestChaosSplitWithoutParityLosesShard documents the contrapositive: the
// same campaign without a parity member must fail closed at the member
// loss, not serve corrupted data.
func TestChaosSplitWithoutParityLosesShard(t *testing.T) {
	res, err := chaos.RunSplit(chaos.SplitConfig{
		SDIMMs:      4,
		Levels:      10,
		Accesses:    200,
		Addresses:   32,
		Seed:        7,
		Parity:      false,
		FailShardAt: 50,
		FailShard:   1,
	})
	if err == nil {
		t.Fatalf("run survived a shard loss without parity:\n%s", res)
	}
	if res.Mismatches != 0 {
		t.Fatalf("served %d corrupted payloads before failing", res.Mismatches)
	}
}
